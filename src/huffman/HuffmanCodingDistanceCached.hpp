#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "HuffmanCodingBase.hpp"
#include "HuffmanCodingDoubleLUT.hpp"

namespace rapidgzip {

/**
 * Cached LUT for the Deflate distance alphabet — the distance-side
 * counterpart of HuffmanCodingMultiCached: one lookup indexed by
 * CACHE_BITS peeked bits resolves the common cases completely:
 *
 *  - a distance symbol INCLUDING its extra bits when code + extra fit into
 *    the window (payload is the final distance 1..32768 — no second read);
 *  - a distance symbol whose extra bits overflow the window (payload is the
 *    base distance; the entry carries the extra-bit count for one more
 *    read).
 *
 * Codes longer than CACHE_BITS, invalid patterns, and the invalid symbols
 * 30/31 fall back to the embedded two-level HuffmanCodingDoubleLUT, which
 * also serves the reference decode path via decode(). Matches dominate
 * decode time on compressible data (two thirds of silesia's output bytes
 * come from matches), so folding the extra-bits read into the same table
 * hit pays exactly like it does for lengths.
 */
class HuffmanCodingDistanceCached final
    : public HuffmanCodingBase<HuffmanCodingDistanceCached>
{
    friend class HuffmanCodingBase<HuffmanCodingDistanceCached>;

public:
    static constexpr unsigned CACHE_BITS = 11;

    enum Kind : std::uint8_t
    {
        FALLBACK = 0,       /**< long code, invalid pattern, or symbol > 29: use fallback() */
        DISTANCE = 1,       /**< payload = base distance; add extraBits() more stream bits
                             *   (0 = final distance, extra already folded in) */
    };

    struct Entry
    {
        std::uint16_t payload{ 0 };
        std::uint8_t bitsConsumed{ 0 };   /**< stream bits this entry accounts for */
        std::uint8_t kindAndExtra{ 0 };   /**< kind in low nibble, extra-bit count in high */

        [[nodiscard]] Kind kind() const noexcept
        { return static_cast<Kind>( kindAndExtra & 0x0FU ); }

        [[nodiscard]] unsigned extraBits() const noexcept
        { return kindAndExtra >> 4U; }
    };

    /** @p buildCache false skips the cache build (see
     * HuffmanCodingMultiCached::initializeFromLengths). */
    [[nodiscard]] bool
    initializeFromLengths( VectorView<std::uint8_t> codeLengths, bool buildCache = true )
    {
        if ( !m_fallback.initializeFromLengths( codeLengths ) ) {
            return false;
        }
        m_buildCache = buildCache;
        return HuffmanCodingBase<HuffmanCodingDistanceCached>::initializeFromLengths(
            codeLengths );
    }

    [[nodiscard]] const Entry*
    tableData() const noexcept
    {
        return m_table.data();
    }

    /** Reference single-symbol decode — identical semantics to the two-level
     * LUT (it IS the two-level LUT). */
    [[nodiscard]] int
    decode( BitReader& bitReader ) const
    {
        return m_fallback.decode( bitReader );
    }

    [[nodiscard]] const HuffmanCodingDoubleLUT&
    fallback() const noexcept
    {
        return m_fallback;
    }

private:
    /** Deflate distance tables, duplicated from deflate/definitions.hpp so
     * the huffman layer stays below the deflate layer; the Decoder's
     * fast-vs-reference equivalence tests pin the two copies together. */
    static constexpr std::uint16_t DISTANCE_BASES[30] = {
        1, 2, 3, 4, 5, 7, 9, 13, 17, 25, 33, 49, 65, 97, 129, 193,
        257, 385, 513, 769, 1025, 1537, 2049, 3073, 4097, 6145, 8193, 12289, 16385, 24577
    };
    static constexpr std::uint8_t DISTANCE_EXTRAS[30] = {
        0, 0, 0, 0, 1, 1, 2, 2, 3, 3, 4, 4, 5, 5, 6, 6,
        7, 7, 8, 8, 9, 9, 10, 10, 11, 11, 12, 12, 13, 13
    };

    [[nodiscard]] bool
    buildLookupTables()
    {
        if ( !m_buildCache ) {
            return true;
        }
        /* Wider than one code on purpose so short codes fold their extra
         * bits into the same lookup. */
        m_cacheBits = CACHE_BITS;

        m_table.assign( std::size_t( 1 ) << m_cacheBits, Entry{} );
        for ( const auto& code : m_codes ) {
            if ( ( code.length > m_cacheBits ) || ( code.symbol > 29 ) ) {
                continue;  /* FALLBACK entries (symbols 30/31 rejected downstream) */
            }
            const auto extra = DISTANCE_EXTRAS[code.symbol];
            const auto stride = std::size_t( 1 ) << code.length;
            if ( code.length + extra <= m_cacheBits ) {
                /* Folded: enumerate every extra-bit pattern. */
                const auto patterns = std::size_t( 1 ) << extra;
                for ( std::size_t extraValue = 0; extraValue < patterns; ++extraValue ) {
                    Entry entry;
                    entry.payload = static_cast<std::uint16_t>( DISTANCE_BASES[code.symbol]
                                                                + extraValue );
                    entry.bitsConsumed = static_cast<std::uint8_t>( code.length + extra );
                    entry.kindAndExtra = DISTANCE;
                    const auto base = code.reversedCode
                                      | ( extraValue << code.length );
                    const auto combinedStride = stride << extra;
                    for ( auto index = base; index < m_table.size();
                          index += combinedStride ) {
                        m_table[index] = entry;
                    }
                }
            } else {
                Entry entry;
                entry.payload = DISTANCE_BASES[code.symbol];
                entry.bitsConsumed = code.length;
                entry.kindAndExtra = static_cast<std::uint8_t>( DISTANCE | ( extra << 4U ) );
                for ( auto index = std::size_t( code.reversedCode ); index < m_table.size();
                      index += stride ) {
                    m_table[index] = entry;
                }
            }
        }
        return true;
    }

    HuffmanCodingDoubleLUT m_fallback;
    std::vector<Entry> m_table;
    unsigned m_cacheBits{ CACHE_BITS };
    bool m_buildCache{ true };
};

}  // namespace rapidgzip
