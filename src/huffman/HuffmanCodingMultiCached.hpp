#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "HuffmanCodingBase.hpp"
#include "HuffmanCodingDoubleLUT.hpp"

namespace rapidgzip {

/**
 * Multi-symbol cached LUT for the Deflate literal/length alphabet — the
 * paper's "most decode time is symbol-by-symbol Huffman decoding" hot path
 * (Table 2) collapsed into one table hit per 1-2 output bytes. One lookup
 * indexed by cacheBits() peeked bits resolves the COMMON cases completely:
 *
 *  - two literal symbols whose codes both fit into the peeked window
 *    (payload packs both bytes; one lookup emits two output bytes);
 *  - one literal symbol;
 *  - a length symbol INCLUDING its extra bits when code + extra fit into
 *    the window (payload is the final match length 3..258 — no second read);
 *  - a length symbol whose extra bits overflow the window (payload is the
 *    base length; the entry carries the extra-bit count for one more read);
 *  - end-of-block.
 *
 * Codes longer than cacheBits() (rare by construction: canonical codings put
 * long codes on rare symbols) fall back to the embedded two-level
 * HuffmanCodingDoubleLUT, which also serves the reference decode path —
 * decode() delegates to it wholesale, so this class is a drop-in replacement
 * wherever the two-level coding was used, with lookup() as the additional
 * fast-path interface.
 *
 * Construction is by ENUMERATION, not by combining a per-index base table:
 * singles, lengths, and EOB are stride-filled directly, then every
 * compatible literal pair (len1 + len2 <= CACHE_BITS) upgrades its slots.
 * The Kraft inequality bounds the total pair slots by the table size, so
 * the whole build is O(2^CACHE_BITS) stores with no dependent loads —
 * cheap enough to redo every Dynamic block (~every 30-100 KiB of output).
 * CACHE_BITS = 12 balances reach (two 6-bit codes — base64's whole
 * alphabet — and most length codes plus their extra bits) against the
 * 16 KiB footprint that must share L1 with the distance table, the output
 * stream, and the window.
 */
class HuffmanCodingMultiCached final : public HuffmanCodingBase<HuffmanCodingMultiCached>
{
    friend class HuffmanCodingBase<HuffmanCodingMultiCached>;

public:
    static constexpr unsigned CACHE_BITS = 12;

    /**
     * Entry kinds for lookup(). FALLBACK entries have bitsConsumed == 0, so
     * an unconditional consumeUnsafe( bitsConsumed ) before dispatch is
     * correct for every kind. Single and double literals share ONE kind —
     * the emit path always writes both payload bytes and advances the
     * cursor by count(), which keeps the hottest dispatch branch
     * (literal vs not) highly predictable instead of a 1-vs-2-symbol coin
     * flip. LENGTH entries with their extra bits folded in simply carry
     * extraBits() == 0, unifying them with the overflow case.
     */
    enum Kind : std::uint8_t
    {
        FALLBACK = 0,      /**< long code, invalid pattern, or symbol > 285: use fallback() */
        LITERALS = 1,      /**< payload = byte0 | byte1 << 8; emit count() bytes */
        LENGTH = 2,        /**< payload = base length; add extraBits() more stream bits */
        END_OF_BLOCK = 3,  /**< symbol 256 */
    };

    struct Entry
    {
        std::uint16_t payload{ 0 };
        std::uint8_t bitsConsumed{ 0 };   /**< stream bits this entry accounts for */
        std::uint8_t kindAndAux{ 0 };     /**< kind in low nibble, count/extra in high */

        [[nodiscard]] Kind kind() const noexcept
        { return static_cast<Kind>( kindAndAux & 0x0FU ); }

        /** LITERALS: number of packed literal bytes (1 or 2). */
        [[nodiscard]] unsigned count() const noexcept
        { return kindAndAux >> 4U; }

        /** LENGTH: extra bits still to read (0 = folded into payload). */
        [[nodiscard]] unsigned extraBits() const noexcept
        { return kindAndAux >> 4U; }
    };

    /** Build both the fallback two-level tables and the multi-symbol cache.
     * Accept/reject behavior is identical to HuffmanCodingDoubleLUT.
     * @p buildCache false skips the cache build (lookup() is then unusable):
     * the reference decode path uses it so its per-block construction cost
     * stays exactly the pre-optimization cost. */
    [[nodiscard]] bool
    initializeFromLengths( VectorView<std::uint8_t> codeLengths, bool buildCache = true )
    {
        if ( !m_fallback.initializeFromLengths( codeLengths ) ) {
            return false;
        }
        m_buildCache = buildCache;
        return HuffmanCodingBase<HuffmanCodingMultiCached>::initializeFromLengths( codeLengths );
    }

    /** Fast-path lookup; @p bits must hold at least cacheBits() peeked bits
     * (extra high bits are ignored). */
    [[nodiscard]] const Entry&
    lookup( std::uint64_t bits ) const noexcept
    {
        return m_table[bits & m_cacheMask];
    }

    /** Raw table for hot loops that hoist the pointer into a local — going
     * through lookup() would reload the vector's data pointer around every
     * output store (byte stores alias everything). Index with
     * peeked-bits & cacheMask(). */
    [[nodiscard]] const Entry*
    tableData() const noexcept
    {
        return m_table.data();
    }

    [[nodiscard]] std::uint64_t
    cacheMask() const noexcept
    {
        return m_cacheMask;
    }

    [[nodiscard]] unsigned
    cacheBits() const noexcept
    {
        return m_cacheBits;
    }

    /** Reference single-symbol decode — identical semantics to the two-level
     * LUT (it IS the two-level LUT). */
    [[nodiscard]] int
    decode( BitReader& bitReader ) const
    {
        return m_fallback.decode( bitReader );
    }

    [[nodiscard]] const HuffmanCodingDoubleLUT&
    fallback() const noexcept
    {
        return m_fallback;
    }

private:
    /** Deflate length-symbol tables, duplicated from deflate/definitions.hpp
     * so the huffman layer stays below the deflate layer; the Decoder's
     * fast-vs-reference equivalence tests pin the two copies together. */
    static constexpr std::uint16_t LENGTH_BASES[29] = {
        3, 4, 5, 6, 7, 8, 9, 10, 11, 13, 15, 17, 19, 23, 27, 31,
        35, 43, 51, 59, 67, 83, 99, 115, 131, 163, 195, 227, 258
    };
    static constexpr std::uint8_t LENGTH_EXTRAS[29] = {
        0, 0, 0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2,
        3, 3, 3, 3, 4, 4, 4, 4, 5, 5, 5, 5, 0
    };

    [[nodiscard]] bool
    buildLookupTables()
    {
        if ( !m_buildCache ) {
            return true;
        }
        /* Deliberately NOT clamped to maxCodeLength(): the whole point is a
         * window WIDER than one code so a second literal or the length's
         * extra bits fit into the same lookup. */
        m_cacheBits = CACHE_BITS;
        m_cacheMask = ( std::uint64_t( 1 ) << m_cacheBits ) - 1U;
        const auto tableSize = std::size_t( 1 ) << m_cacheBits;
        m_table.assign( tableSize, Entry{} );

        /* Pass 1: stride-fill per code — single literals, EOB, and lengths
         * (extra bits folded when they fit); codes longer than cacheBits
         * leave FALLBACK entries. Literal codes are also collected sorted by
         * length for the pair pass. */
        m_literalCodes.clear();
        for ( const auto& code : m_codes ) {
            if ( code.length > m_cacheBits ) {
                continue;
            }
            const auto stride = std::size_t( 1 ) << code.length;
            if ( code.symbol < 256 ) {
                m_literalCodes.push_back( code );
                const Entry entry{ code.symbol, code.length,
                                   static_cast<std::uint8_t>( LITERALS | ( 1U << 4U ) ) };
                for ( auto index = std::size_t( code.reversedCode ); index < tableSize;
                      index += stride ) {
                    m_table[index] = entry;
                }
            } else if ( code.symbol == 256 ) {
                const Entry entry{ 0, code.length, END_OF_BLOCK };
                for ( auto index = std::size_t( code.reversedCode ); index < tableSize;
                      index += stride ) {
                    m_table[index] = entry;
                }
            } else if ( code.symbol <= 285 ) {
                const auto lengthIndex = static_cast<std::size_t>( code.symbol - 257 );
                const auto extra = LENGTH_EXTRAS[lengthIndex];
                if ( code.length + extra <= m_cacheBits ) {
                    /* Folded: enumerate every extra-bit pattern. */
                    const auto patterns = std::size_t( 1 ) << extra;
                    const auto combinedStride = stride << extra;
                    for ( std::size_t extraValue = 0; extraValue < patterns; ++extraValue ) {
                        const Entry entry{
                            static_cast<std::uint16_t>( LENGTH_BASES[lengthIndex] + extraValue ),
                            static_cast<std::uint8_t>( code.length + extra ),
                            LENGTH };
                        for ( auto index = code.reversedCode | ( extraValue << code.length );
                              index < tableSize; index += combinedStride ) {
                            m_table[index] = entry;
                        }
                    }
                } else {
                    const Entry entry{ LENGTH_BASES[lengthIndex], code.length,
                                       static_cast<std::uint8_t>( LENGTH | ( extra << 4U ) ) };
                    for ( auto index = std::size_t( code.reversedCode ); index < tableSize;
                          index += stride ) {
                        m_table[index] = entry;
                    }
                }
            }
            /* else: 286/287 — valid code, invalid Deflate symbol. Left as a
             * FALLBACK entry: the two-level decode returns the raw symbol
             * and the decoder rejects it exactly like the reference path. */
        }

        /* Pass 2: upgrade compatible literal pairs. Kraft bounds the total
         * filled slots by the table size, so this stays O(2^cacheBits)
         * regardless of the coding shape. Sorting by length lets the inner
         * loop stop at the first second-code that no longer fits. */
        std::sort( m_literalCodes.begin(), m_literalCodes.end(),
                   [] ( const CanonicalCode& a, const CanonicalCode& b ) {
                       return a.length < b.length;
                   } );
        for ( const auto& first : m_literalCodes ) {
            const auto remaining = m_cacheBits - first.length;
            for ( const auto& second : m_literalCodes ) {
                if ( second.length > remaining ) {
                    break;  /* sorted: nothing further fits */
                }
                const Entry entry{ static_cast<std::uint16_t>(
                                       first.symbol | ( second.symbol << 8U ) ),
                                   static_cast<std::uint8_t>( first.length + second.length ),
                                   static_cast<std::uint8_t>( LITERALS | ( 2U << 4U ) ) };
                const auto base = first.reversedCode
                                  | ( std::size_t( second.reversedCode ) << first.length );
                const auto stride = std::size_t( 1 ) << ( first.length + second.length );
                for ( auto index = base; index < tableSize; index += stride ) {
                    m_table[index] = entry;
                }
            }
        }
        return true;
    }

    HuffmanCodingDoubleLUT m_fallback;
    std::vector<Entry> m_table;
    std::vector<CanonicalCode> m_literalCodes;  /* scratch, kept for reuse */
    unsigned m_cacheBits{ CACHE_BITS };
    std::uint64_t m_cacheMask{ 0 };
    bool m_buildCache{ true };
};

}  // namespace rapidgzip
