/**
 * Figure 7 reproduction: BitReader bandwidth as a function of the number of
 * bits requested per read call. The paper's curve rises from ~100 MB/s at
 * 1 bit/call to ~2 GB/s at 24-32 bits/call because the 64-bit refill
 * amortizes over larger requests.
 */

#include <cstdio>
#include <vector>

#include "bits/BitReader.hpp"
#include "workloads/DataGenerators.hpp"

#include "BenchmarkHelpers.hpp"

using namespace rapidgzip;

int
main()
{
    bench::printHeader("Figure 7: BitReader::read bandwidth vs bits per read call");

    const auto repeats = bench::benchRepeats(5);
    std::printf("  %-20s %s\n", "bits per read", "bandwidth");

    for (unsigned bitsPerRead = 1; bitsPerRead <= 32; ++bitsPerRead) {
        /* Scale the data with bits-per-read for roughly equal runtimes,
         * exactly like the paper's setup (2 MiB * bits). */
        const auto dataSize = bench::scaledSize(std::size_t(2) * MiB * bitsPerRead / 4 + MiB);
        const auto data = workloads::randomData(dataSize, bitsPerRead);

        volatile std::uint64_t sink = 0;
        const auto bandwidth = bench::measureBandwidth(data.size(), repeats, [&]() {
            BitReader reader(data.data(), data.size());
            const auto totalBits = data.size() * 8;
            std::uint64_t sum = 0;
            std::size_t position = 0;
            for (; position + bitsPerRead <= totalBits; position += bitsPerRead) {
                sum += reader.read(bitsPerRead);
            }
            sink = sink + sum;
        });

        /* The PR-4 guaranteed-bits discipline: one ensureBits() per four
         * reads, then register-only readUnsafe() — the decoder's inner-loop
         * pattern. The gap over checked read() is the refill-amortization
         * win at equal bits-per-call. */
        const auto group = std::max(1U, std::min(4U, BitReader::MAX_ENSURE_BITS / bitsPerRead));
        const auto amortized = bench::measureBandwidth(data.size(), repeats, [&]() {
            BitReader reader(data.data(), data.size());
            std::uint64_t sum = 0;
            while (reader.ensureBits(group * bitsPerRead)) {
                for (unsigned i = 0; i < group; ++i) {
                    sum += reader.readUnsafe(bitsPerRead);
                }
            }
            sink = sink + sum;
        });

        std::printf("  %-20u %10.2f ± %-8.2f MB/s   unsafe x4: %10.2f MB/s (%4.2fx)\n",
                    bitsPerRead, bandwidth.mean / 1e6, bandwidth.stddev / 1e6,
                    amortized.mean / 1e6, amortized.mean / std::max(bandwidth.mean, 1.0));
        std::fflush(stdout);
    }

    std::printf("\n  Expected shape (paper Fig. 7): monotone increase, saturating\n"
                "  around 20+ bits per call; >10x between 1 and 32 bits. The\n"
                "  ensureBits/readUnsafe column must sit above the checked read()\n"
                "  column, widest at small bit counts where the per-call refill\n"
                "  check dominates.\n");
    return 0;
}
