/**
 * Figure 8 reproduction: SharedFileReader bandwidth for N threads reading a
 * file in a strided pattern (128 KiB chunks per thread, skipping the other
 * threads' chunks) — the paper reads a 1 GiB file from /dev/shm and reaches
 * ~18 GB/s with 4+ threads.
 */

#include <cstdio>
#include <fstream>
#include <future>
#include <vector>

#include "io/MemoryFileReader.hpp"
#include "io/SharedFileReader.hpp"
#include "io/StandardFileReader.hpp"
#include "workloads/DataGenerators.hpp"

#include "BenchmarkHelpers.hpp"

using namespace rapidgzip;

namespace {

double
stridedReadBandwidth(const SharedFileReader& shared, std::size_t fileSize, std::size_t threadCount)
{
    constexpr std::size_t CHUNK = 128 * 1024;
    Stopwatch stopwatch;
    std::vector<std::future<std::size_t>> futures;
    for (std::size_t t = 0; t < threadCount; ++t) {
        auto view = shared.clone();
        futures.push_back(std::async(std::launch::async, [t, threadCount,
                                                          view = std::move(view), fileSize]() {
            std::vector<std::uint8_t> buffer(CHUNK);
            std::size_t total = 0;
            for (std::size_t offset = t * CHUNK; offset < fileSize;
                 offset += threadCount * CHUNK) {
                total += view->pread(buffer.data(), CHUNK, offset);
            }
            return total;
        }));
    }
    std::size_t totalRead = 0;
    for (auto& future : futures) {
        totalRead += future.get();
    }
    return static_cast<double>(totalRead) / stopwatch.elapsed();
}

}  // namespace

int
main()
{
    bench::printHeader("Figure 8: SharedFileReader strided parallel read bandwidth");

    const auto fileSize = bench::scaledSize(256 * MiB);
    const auto repeats = bench::benchRepeats(5);

    /* In-memory backing emulates the paper's /dev/shm source. */
    auto data = workloads::randomData(fileSize, 0xF18);
    const SharedFileReader shared(
        std::unique_ptr<FileReader>(std::make_unique<MemoryFileReader>(std::move(data))));

    std::printf("  file size: %s (paper: 1 GiB in /dev/shm)\n\n", formatBytes(fileSize).c_str());
    std::printf("  %-10s %s\n", "threads", "bandwidth");

    for (const auto threadCount : bench::threadSweep()) {
        std::vector<double> samples;
        for (std::size_t i = 0; i < repeats; ++i) {
            samples.push_back(stridedReadBandwidth(shared, fileSize, threadCount));
        }
        double mean = 0;
        for (const auto sample : samples) {
            mean += sample;
        }
        mean /= static_cast<double>(samples.size());
        std::printf("  %-10zu %10.2f GB/s\n", threadCount, mean / 1e9);
        std::fflush(stdout);
    }

    std::printf("\n  Expected shape (paper Fig. 8): rises to saturation within a few\n"
                "  threads (memory-bandwidth-bound); flat on a single-core host.\n");
    return 0;
}
