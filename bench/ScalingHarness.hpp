#pragma once

/**
 * Shared machinery for the scaling figures (paper Figs. 9-11): runs a set of
 * decompressors over a thread-count sweep against one compressed file and
 * prints bandwidth rows in decompressed bytes per second, like the paper.
 */

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "baselines/PugzLikeDecompressor.hpp"
#include "core/ParallelGzipReader.hpp"
#include "gzip/GzipReader.hpp"
#include "gzip/ZlibCompressor.hpp"
#include "io/MemoryFileReader.hpp"

#include "BenchmarkHelpers.hpp"

namespace rapidgzip::bench {

struct ScalingTool
{
    std::string name;
    bool sweepsThreads{ true };
    /** Returns decompressed bytes. */
    std::function<std::size_t(const std::vector<std::uint8_t>& file, std::size_t threads)> run;
};

[[nodiscard]] inline ChunkFetcherConfiguration
scalingConfig(std::size_t threads)
{
    ChunkFetcherConfiguration config;
    config.parallelism = threads;
    config.chunkSizeBytes = 1 * MiB;  // scaled-down default for laptop-size inputs
    return config;
}

[[nodiscard]] inline ScalingTool
rapidgzipNoIndexTool()
{
    return { "rapidgzip (no index)", true,
             [](const std::vector<std::uint8_t>& file, std::size_t threads) {
                 ParallelGzipReader reader(std::make_unique<MemoryFileReader>(file),
                                           scalingConfig(threads));
                 return reader.decompressAll();
             } };
}

[[nodiscard]] inline ScalingTool
rapidgzipIndexTool(std::shared_ptr<GzipIndex> index)
{
    return { "rapidgzip (index)", true,
             [index = std::move(index)](const std::vector<std::uint8_t>& file,
                                        std::size_t threads) {
                 ParallelGzipReader reader(std::make_unique<MemoryFileReader>(file),
                                           scalingConfig(threads));
                 reader.importIndex(*index);
                 return reader.decompressAll();
             } };
}

[[nodiscard]] inline ScalingTool
pugzLikeTool(bool enforceAscii = true)
{
    return { "pugz-like (sync)", true,
             [enforceAscii](const std::vector<std::uint8_t>& file, std::size_t threads) {
                 PugzLikeDecompressor::Options options;
                 options.threadCount = threads;
                 options.enforceAsciiRange = enforceAscii;
                 options.chunkSizeBytes = 1 * MiB;
                 PugzLikeDecompressor decompressor(std::make_unique<MemoryFileReader>(file),
                                                   options);
                 return decompressor.decompressAllSize();
             } };
}

[[nodiscard]] inline ScalingTool
sequentialGzipTool()
{
    return { "rapidgzip sequential decoder (1 thread)", false,
             [](const std::vector<std::uint8_t>& file, std::size_t) {
                 GzipReader reader(std::make_unique<MemoryFileReader>(file));
                 return reader.decompressAll();
             } };
}

[[nodiscard]] inline ScalingTool
zlibTool()
{
    return { "zlib single-threaded (gzip stand-in)", false,
             [](const std::vector<std::uint8_t>& file, std::size_t) {
                 return decompressWithZlib({ file.data(), file.size() }).size();
             } };
}

inline void
runScaling(const std::string& title,
           const std::vector<std::uint8_t>& data,
           const std::vector<std::uint8_t>& compressed,
           const std::vector<ScalingTool>& tools)
{
    printHeader(title);
    std::printf("  uncompressed: %s, compressed: %s, ratio %.3f\n\n",
                formatBytes(data.size()).c_str(),
                formatBytes(compressed.size()).c_str(),
                static_cast<double>(data.size()) / static_cast<double>(compressed.size()));

    const auto repeats = benchRepeats(3);
    const auto sweep = threadSweep();

    for (const auto& tool : tools) {
        if (!tool.sweepsThreads) {
            const auto bandwidth = measureBandwidth(data.size(), repeats, [&]() {
                (void)tool.run(compressed, 1);
            });
            printRow(tool.name + " [P=1]", bandwidth);
            continue;
        }
        for (const auto threads : sweep) {
            const auto bandwidth = measureBandwidth(data.size(), repeats, [&]() {
                (void)tool.run(compressed, threads);
            });
            printRow(tool.name + " [P=" + std::to_string(threads) + "]", bandwidth);
        }
    }
}

}  // namespace rapidgzip::bench
