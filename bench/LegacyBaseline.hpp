#pragma once

/**
 * Measurement interface over the vendored pre-PR implementation
 * (bench/legacy/). Deliberately a separate translation unit: compiling the
 * legacy and current hot loops into one object file changes the compiler's
 * inlining and layout decisions for BOTH sides by tens of percent, which
 * would make the before/after numbers artifacts of TU composition instead
 * of code. Keep this header free of legacy includes.
 */

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/Util.hpp"

#include "HotpathContracts.hpp"

namespace legacybench {

/** Best-of-@p repeats bandwidth (bytes/s) of the pre-PR BitReader reading
 * @p bits bits per checked read() call over @p data. */
[[nodiscard]] double
measureBitReaderBandwidth( rapidgzip::BufferView data, unsigned bits, std::size_t repeats );

/** One-shot pre-PR decode from @p fromBit for the equivalence check. */
[[nodiscard]] rapidgzip::bench::DecodeResult
decodeOnce( rapidgzip::BufferView stream, std::size_t fromBit, bool windowKnown );

/** Best-of-@p repeats decode bandwidth (bytes/s) of the pre-PR decoder.
 * Returns 0 if a run decodes differently than @p expectBytes. */
[[nodiscard]] double
measureDecodeBandwidth( rapidgzip::BufferView stream, std::size_t fromBit, bool windowKnown,
                        std::size_t expectBytes, std::size_t repeats );

/** Run the pre-PR rapid-finder cascade once over @p positions (equivalence). */
[[nodiscard]] rapidgzip::bench::FilterCounts
runFilter( rapidgzip::BufferView stream, const std::vector<std::size_t>& positions );

/** Best-of-@p repeats rejection rate (positions/s) of the pre-PR cascade. */
[[nodiscard]] double
measureRejectionRate( rapidgzip::BufferView stream,
                      const std::vector<std::size_t>& positions, std::size_t repeats );

/** One-shot pre-PR scalar replaceMarkers (equivalence check). @p window must
 * be a full 32 KiB last-window. */
[[nodiscard]] std::vector<std::uint8_t>
replaceMarkersOnce( const std::vector<std::uint16_t>& symbols,
                    const std::vector<std::uint8_t>& window );

/** Best-of-@p repeats bandwidth (output bytes/s) of the pre-PR scalar
 * per-symbol replaceMarkers loop. */
[[nodiscard]] double
measureReplaceMarkersBandwidth( const std::vector<std::uint16_t>& symbols,
                                const std::vector<std::uint8_t>& window,
                                std::size_t repeats );

/** One-shot zlib crc32 (the pre-PR CRC on every hot path; equivalence
 * oracle). */
[[nodiscard]] std::uint32_t
crc32Once( rapidgzip::BufferView data );

/** Best-of-@p repeats bandwidth (bytes/s) of zlib's crc32. */
[[nodiscard]] double
measureCrc32Bandwidth( rapidgzip::BufferView data, std::size_t repeats );

}  // namespace legacybench
