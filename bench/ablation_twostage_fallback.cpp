/**
 * Ablation: the two-stage → conventional fallback (paper §3.3/§4.4).
 *
 * When the trailing 32 KiB of a chunk contain no markers, the decoder
 * materializes a window and continues with plain 8-bit decoding, skipping
 * the 16-bit intermediate format. The paper credits this for base64-style
 * data where backward pointers die out quickly; on Silesia-style data
 * markers persist and the fallback never triggers.
 *
 * This benchmark quantifies: (a) what fraction of chunk output is decoded in
 * 16-bit mode per workload, and (b) the marker replacement cost that the
 * fallback avoids.
 */

#include <cstdio>
#include <memory>

#include "core/GzipChunkFetcher.hpp"
#include "gzip/ZlibCompressor.hpp"
#include "io/MemoryFileReader.hpp"
#include "workloads/DataGenerators.hpp"

#include "BenchmarkHelpers.hpp"

using namespace rapidgzip;

namespace {

void
analyzeWorkload(const char* name, const std::vector<std::uint8_t>& data)
{
    const auto compressed = compressGzipLike({ data.data(), data.size() }, 6);
    MemoryFileReader reader(compressed);

    /* Scale the chunk grid with the workload so RAPIDGZIP_BENCH_SCALE keeps
     * producing mid-file chunks (a fixed 1 MiB grid yields zero chunks on
     * small CI runs). Keep >= 128 KiB so the fallback has room to trigger. */
    const std::size_t PARTITION = std::max<std::size_t>(bench::scaledSize(1 * MiB), 128 * KiB);
    std::size_t markedBytes = 0;
    std::size_t plainBytes = 0;
    std::size_t chunks = 0;

    /* Decode mid-file chunks the way the prefetcher would. */
    for (std::size_t partition = 1; (partition + 1) * PARTITION < compressed.size();
         ++partition) {
        const auto chunk = GzipChunkFetcher::decodeChunkFromGuess(
            reader, partition * PARTITION * 8, (partition + 1) * PARTITION * 8,
            std::numeric_limits<std::size_t>::max());
        if (chunk.error != Error::NONE) {
            continue;
        }
        markedBytes += chunk.data.marked.size();
        for (const auto& segment : chunk.data.plain) {
            plainBytes += segment.decodedSize();
        }
        ++chunks;
    }

    const auto total = markedBytes + plainBytes;
    std::printf("  %-14s chunks: %3zu   16-bit portion: %5.1f %%   8-bit portion: %5.1f %%\n",
                name, chunks,
                total > 0 ? 100.0 * static_cast<double>(markedBytes) / static_cast<double>(total) : 0.0,
                total > 0 ? 100.0 * static_cast<double>(plainBytes) / static_cast<double>(total) : 0.0);
    std::fflush(stdout);
}

}  // namespace

int
main()
{
    bench::printHeader("Ablation: two-stage -> conventional fallback (paper 3.3)");

    const auto size = bench::scaledSize(24 * MiB);
    analyzeWorkload("base64", workloads::base64Data(size, 0xAB1));
    analyzeWorkload("fastq", workloads::fastqData(size, 0xAB2));
    analyzeWorkload("silesia-like", workloads::silesiaLikeData(size, 0xAB3));
    analyzeWorkload("random", workloads::randomData(size, 0xAB4));

    /* Marker replacement cost avoided by the fallback. */
    const auto repeats = bench::benchRepeats(3);
    const auto symbolCount = bench::scaledSize(24 * MiB);
    std::vector<std::uint16_t> symbols(symbolCount);
    for (std::size_t i = 0; i < symbols.size(); ++i) {
        symbols[i] = static_cast<std::uint16_t>(i & 0x7FU);
    }
    const auto window = workloads::randomData(32768, 0xAB5);
    std::vector<std::uint8_t> output(symbols.size());
    const auto replaceBandwidth = bench::measureBandwidth(symbols.size(), repeats, [&]() {
        deflate::replaceMarkers({ symbols.data(), symbols.size() },
                                { window.data(), window.size() }, output.data());
    });
    std::printf("\n");
    bench::printRow("Marker replacement avoided by fallback", replaceBandwidth, "1254 MB/s");

    std::printf("\n  Expected shape: base64/fastq chunks fall back quickly (small 16-bit\n"
                "  fraction); silesia-like chunks stay in 16-bit mode (markers persist),\n"
                "  which is why Fig. 10 stops scaling earlier than Fig. 9 in the paper.\n");
    return 0;
}
