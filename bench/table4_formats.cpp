/**
 * Table 4 reproduction: cross-format decompression comparison at fixed
 * parallelization. Paper (Silesia, per-core-scaled sizes): at P=1 zstd/lz4
 * beat gzip decoders; at P=128 rapidgzip(index) reaches 16.4 GB/s, twice
 * pzstd's 8.8 GB/s, because pzstd parallelizes poorly.
 *
 * Offline substitutions (DESIGN.md): zstd rows are dropped (no offline
 * implementation); lz4 rows use this repo's from-scratch LZ4; bzip2 rows use
 * libbz2 single-threaded (lbzip2's parallelization is out of scope).
 */

#include <cstdio>
#include <memory>

#include "baselines/BgzfParallelDecompressor.hpp"
#include "bzip2/Bzip2Decompressor.hpp"
#include "core/ParallelGzipReader.hpp"
#include "gzip/BgzfWriter.hpp"
#include "gzip/GzipReader.hpp"
#include "gzip/ZlibCompressor.hpp"
#include "io/MemoryFileReader.hpp"
#include "lz4/Lz4.hpp"
#include "workloads/DataGenerators.hpp"

#include "BenchmarkHelpers.hpp"

using namespace rapidgzip;

namespace {

void
printFormatRow(const char* format, const char* tool, std::size_t parallelism, double ratio,
               const bench::Measurement& bandwidth, const char* paper)
{
    std::printf("  %-8s %-24s P=%-4zu ratio %-6.2f %10.2f ± %-8.2f MB/s   [paper: %s]\n",
                format, tool, parallelism, ratio,
                bandwidth.mean / 1e6, bandwidth.stddev / 1e6, paper);
    std::fflush(stdout);
}

}  // namespace

int
main()
{
    bench::printHeader("Table 4: cross-format decompression comparison");

    const auto data = workloads::silesiaLikeData(bench::scaledSize(32 * MiB), 0x7AB1E7);
    const std::span<const std::uint8_t> span{ data.data(), data.size() };
    const auto repeats = bench::benchRepeats(3);

    const auto gzipFile = compressGzipLike(span, 6);
    const auto bgzfFile = writeBgzf(span, { .level = 6 });
    const auto bz2File = bzip2::compress(span, 9);
    const auto lz4File = lz4::compressFrame(span);

    const auto ratioOf = [&](const auto& file) {
        return static_cast<double>(data.size()) / static_cast<double>(file.size());
    };

    /* --- P = 1 --- */
    printFormatRow("gzip", "rapidgzip", 1, ratioOf(gzipFile),
                   bench::measureBandwidth(data.size(), repeats, [&]() {
                       ChunkFetcherConfiguration config;
                       config.parallelism = 1;
                       config.chunkSizeBytes = 1 * MiB;
                       ParallelGzipReader reader(std::make_unique<MemoryFileReader>(gzipFile),
                                                 config);
                       (void)reader.decompressAll();
                   }),
                   "0.153 GB/s");
    printFormatRow("gzip", "sequential decoder", 1, ratioOf(gzipFile),
                   bench::measureBandwidth(data.size(), repeats, [&]() {
                       GzipReader reader(std::make_unique<MemoryFileReader>(gzipFile));
                       (void)reader.decompressAll();
                   }),
                   "0.153 GB/s");
    printFormatRow("gzip", "zlib (igzip stand-in)", 1, ratioOf(gzipFile),
                   bench::measureBandwidth(data.size(), repeats, [&]() {
                       (void)decompressWithZlib({ gzipFile.data(), gzipFile.size() });
                   }),
                   "0.656 GB/s (igzip)");
    printFormatRow("bgzip", "zlib sequential", 1, ratioOf(bgzfFile),
                   bench::measureBandwidth(data.size(), repeats, [&]() {
                       (void)decompressWithZlib({ bgzfFile.data(), bgzfFile.size() });
                   }),
                   "0.298 GB/s (bgzip)");
    printFormatRow("bzip2", "libbz2", 1, ratioOf(bz2File),
                   bench::measureBandwidth(data.size(), repeats, [&]() {
                       (void)bzip2::decompress({ bz2File.data(), bz2File.size() });
                   }),
                   "0.045 GB/s (lbzip2 P=1)");
    printFormatRow("lz4", "rapidgzip-lz4", 1, ratioOf(lz4File),
                   bench::measureBandwidth(data.size(), repeats, [&]() {
                       (void)lz4::decompressFrame({ lz4File.data(), lz4File.size() });
                   }),
                   "1.337 GB/s (lz4)");

    /* --- P = 4 (stand-in for the paper's 16/128-core columns) --- */
    constexpr std::size_t P = 4;
    printFormatRow("gzip", "rapidgzip", P, ratioOf(gzipFile),
                   bench::measureBandwidth(data.size(), repeats, [&]() {
                       ChunkFetcherConfiguration config;
                       config.parallelism = P;
                       config.chunkSizeBytes = 1 * MiB;
                       ParallelGzipReader reader(std::make_unique<MemoryFileReader>(gzipFile),
                                                 config);
                       (void)reader.decompressAll();
                   }),
                   "1.86 GB/s (P=16)");

    GzipIndex index;
    {
        ChunkFetcherConfiguration config;
        config.parallelism = P;
        config.chunkSizeBytes = 1 * MiB;
        ParallelGzipReader builder(std::make_unique<MemoryFileReader>(gzipFile), config);
        index = builder.exportIndex();
    }
    printFormatRow("gzip", "rapidgzip (index)", P, ratioOf(gzipFile),
                   bench::measureBandwidth(data.size(), repeats, [&]() {
                       ChunkFetcherConfiguration config;
                       config.parallelism = P;
                       config.chunkSizeBytes = 1 * MiB;
                       ParallelGzipReader reader(std::make_unique<MemoryFileReader>(gzipFile),
                                                 config);
                       reader.importIndex(index);
                       (void)reader.decompressAll();
                   }),
                   "4.25 GB/s (P=16)");
    printFormatRow("bgzip", "bgzf parallel", P, ratioOf(bgzfFile),
                   bench::measureBandwidth(data.size(), repeats, [&]() {
                       BgzfParallelDecompressor decompressor(
                           std::make_unique<MemoryFileReader>(bgzfFile), P);
                       (void)decompressor.decompressAllSize();
                   }),
                   "2.82 GB/s (P=16)");

    std::printf("\n  Expected shape (paper Table 4): single-threaded, lz4 > zlib > \n"
                "  rapidgzip ≈ bgzip > bzip2; with parallelism the gzip-family tools\n"
                "  overtake the single-threaded comparators (on multi-core hosts).\n"
                "  zstd rows omitted offline; see EXPERIMENTS.md.\n");
    return 0;
}
