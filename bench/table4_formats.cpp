/**
 * Table 4 reproduction: cross-format decompression comparison at fixed
 * parallelization. Paper (Silesia, per-core-scaled sizes): at P=1 zstd/lz4
 * beat gzip decoders; at P=128 rapidgzip(index) reaches 16.4 GB/s, twice
 * pzstd's 8.8 GB/s, because pzstd parallelizes poorly.
 *
 * Offline substitutions (DESIGN.md): the zstd/lz4/bzip2 rows are dropped —
 * no offline implementation is in scope — leaving the gzip-family formats
 * the paper's headline claims are about: arbitrary gzip with and without a
 * prebuilt index, and BGZF, whose BC fields make the index free. The index
 * rows exercise index::serializeIndex round trips, i.e. the reuse-from-disk
 * workflow, not just in-memory reuse.
 */

#include <cstdio>
#include <memory>

#include "core/ParallelGzipReader.hpp"
#include "gzip/BgzfWriter.hpp"
#include "gzip/GzipReader.hpp"
#include "gzip/ZlibCompressor.hpp"
#include "index/IndexSerializer.hpp"
#include "io/MemoryFileReader.hpp"
#include "workloads/DataGenerators.hpp"

#include "BenchmarkHelpers.hpp"

using namespace rapidgzip;

namespace {

void
printFormatRow(const char* format, const char* tool, std::size_t parallelism, double ratio,
               const bench::Measurement& bandwidth, const char* paper)
{
    std::printf("  %-8s %-24s P=%-4zu ratio %-6.2f %10.2f ± %-8.2f MB/s   [paper: %s]\n",
                format, tool, parallelism, ratio,
                bandwidth.mean / 1e6, bandwidth.stddev / 1e6, paper);
    std::fflush(stdout);
}

[[nodiscard]] ChunkFetcherConfiguration
config(std::size_t parallelism)
{
    ChunkFetcherConfiguration result;
    result.parallelism = parallelism;
    result.chunkSizeBytes = 1 * MiB;
    return result;
}

}  // namespace

int
main()
{
    bench::printHeader("Table 4: cross-format decompression comparison");

    const auto data = workloads::silesiaLikeData(bench::scaledSize(32 * MiB), 0x7AB1E7);
    const BufferView span{ data.data(), data.size() };
    const auto repeats = bench::benchRepeats(3);

    const auto gzipFile = compressGzipLike(span, 6);
    const auto bgzfFile = writeBgzf(span, 6);

    const auto ratioOf = [&](const auto& file) {
        return static_cast<double>(data.size()) / static_cast<double>(file.size());
    };

    /* --- P = 1 --- */
    printFormatRow("gzip", "rapidgzip", 1, ratioOf(gzipFile),
                   bench::measureBandwidth(data.size(), repeats, [&]() {
                       ParallelGzipReader reader(std::make_unique<MemoryFileReader>(gzipFile),
                                                 config(1));
                       (void)reader.decompressAll();
                   }),
                   "0.153 GB/s");
    printFormatRow("gzip", "sequential decoder", 1, ratioOf(gzipFile),
                   bench::measureBandwidth(data.size(), repeats, [&]() {
                       GzipReader reader(std::make_unique<MemoryFileReader>(gzipFile));
                       (void)reader.decompressAll();
                   }),
                   "0.153 GB/s");
    printFormatRow("gzip", "zlib (igzip stand-in)", 1, ratioOf(gzipFile),
                   bench::measureBandwidth(data.size(), repeats, [&]() {
                       (void)decompressWithZlib({ gzipFile.data(), gzipFile.size() });
                   }),
                   "0.656 GB/s (igzip)");
    printFormatRow("bgzip", "zlib sequential", 1, ratioOf(bgzfFile),
                   bench::measureBandwidth(data.size(), repeats, [&]() {
                       (void)decompressWithZlib({ bgzfFile.data(), bgzfFile.size() });
                   }),
                   "0.298 GB/s (bgzip)");

    /* --- P = 4 (stand-in for the paper's 16/128-core columns) --- */
    constexpr std::size_t P = 4;
    printFormatRow("gzip", "rapidgzip", P, ratioOf(gzipFile),
                   bench::measureBandwidth(data.size(), repeats, [&]() {
                       ParallelGzipReader reader(std::make_unique<MemoryFileReader>(gzipFile),
                                                 config(P));
                       (void)reader.decompressAll();
                   }),
                   "1.86 GB/s (P=16)");

    /* Index reuse: one sweep builds the bit-granular index; serialize and
     * reload it (the on-disk workflow) and measure decompression with the
     * prebuilt index — the paper's headline 'second read' number. */
    std::vector<std::uint8_t> serializedIndex;
    {
        ParallelGzipReader builder(std::make_unique<MemoryFileReader>(gzipFile), config(P));
        serializedIndex = index::serializeIndex(builder.exportIndex());
    }
    std::printf("  [index: %s on disk for %s of gzip]\n",
                formatBytes(serializedIndex.size()).c_str(),
                formatBytes(gzipFile.size()).c_str());
    printFormatRow("gzip", "rapidgzip (index)", P, ratioOf(gzipFile),
                   bench::measureBandwidth(data.size(), repeats, [&]() {
                       ParallelGzipReader reader(std::make_unique<MemoryFileReader>(gzipFile),
                                                 config(P));
                       reader.importIndex(index::deserializeIndex(
                           { serializedIndex.data(), serializedIndex.size() }));
                       (void)reader.decompressAll();
                   }),
                   "4.25 GB/s (P=16)");
    printFormatRow("bgzip", "rapidgzip (BC index)", P, ratioOf(bgzfFile),
                   bench::measureBandwidth(data.size(), repeats, [&]() {
                       ParallelGzipReader reader(std::make_unique<MemoryFileReader>(bgzfFile),
                                                 config(P));
                       (void)reader.decompressAll();
                   }),
                   "2.82 GB/s (P=16)");

    /* Checkpoint-spacing trade-off (ROADMAP open item): sparser checkpoints
     * shrink the serialized index — fewer compressed 32 KiB windows — but
     * every random access must decode from a checkpoint further away. Sweep
     * 2-3 spacings and measure index size plus cold-cache seek+read
     * latency at scattered offsets. */
    {
        std::printf("\n  Index checkpoint spacing vs size and seek latency:\n");
        Xorshift64 random(0x5EEC5);
        for (const std::size_t spacingMiB : { std::size_t(0), std::size_t(4), std::size_t(16) }) {
            auto configuration = config(P);
            configuration.checkpointSpacingBytes = spacingMiB * MiB;

            ParallelGzipReader builder(std::make_unique<MemoryFileReader>(gzipFile),
                                       configuration);
            const auto index = builder.exportIndex();
            const auto serialized = index::serializeIndex(index);

            /* Fresh reader per seek: cold chunk cache, so the latency is the
             * true decode-from-checkpoint cost, not a cache hit. */
            constexpr std::size_t SEEKS = 8;
            std::uint8_t probe[4096];
            Stopwatch stopwatch;
            for (std::size_t i = 0; i < SEEKS; ++i) {
                ParallelGzipReader reader(std::make_unique<MemoryFileReader>(gzipFile),
                                          configuration);
                reader.importIndex(index::deserializeIndex(
                    { serialized.data(), serialized.size() }));
                reader.seek(random.below(std::max<std::size_t>(1, data.size() - sizeof(probe))));
                (void)reader.read(probe, sizeof(probe));
            }
            const auto seekLatency = stopwatch.elapsed() / SEEKS;

            std::printf("    spacing %4zu MiB: %zu checkpoints, index %-10s"
                        " %8.2f ms/seek(4 KiB, cold)\n",
                        spacingMiB, index.checkpoints.size(),
                        formatBytes(serialized.size()).c_str(), seekLatency * 1e3);
            std::fflush(stdout);
        }
    }

    std::printf("\n  Expected shape (paper Table 4): single-threaded rapidgzip ≈ the\n"
                "  sequential decoder and below zlib; with parallelism rapidgzip\n"
                "  overtakes every single-threaded row, the prebuilt index beats the\n"
                "  index-building first read, and BGZF parallelizes for free.\n"
                "  zstd/lz4/bzip2 rows omitted offline; see EXPERIMENTS.md.\n");
    return 0;
}
