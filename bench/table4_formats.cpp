/**
 * Table 4 reproduction: cross-format decompression comparison at fixed
 * parallelization. Paper (Silesia, per-core-scaled sizes): at P=1 zstd/lz4
 * beat gzip decoders; at P=128 rapidgzip(index) reaches 16.4 GB/s, twice
 * pzstd's 8.8 GB/s, because pzstd parallelizes poorly.
 *
 * The formerly-dropped zstd/lz4/bzip2 rows are restored through the
 * format-dispatch layer (src/formats/): each backend generates its own
 * input with its writer (zstd seekable frames, lz4 independent blocks,
 * bzip2 blocks at level 1) and decompresses through
 * formats::makeDecompressor — frame/block-parallel where the container
 * permits. Every multi-backend row also reports a cold random-access seek
 * latency, the paper's seekability axis. gzip rows keep exercising
 * index::serializeIndex round trips, i.e. the reuse-from-disk workflow.
 */

#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/ParallelGzipReader.hpp"
#include "formats/Formats.hpp"
#include "gzip/BgzfWriter.hpp"
#include "gzip/GzipReader.hpp"
#include "gzip/ZlibCompressor.hpp"
#include "index/IndexSerializer.hpp"
#include "io/MemoryFileReader.hpp"
#include "workloads/DataGenerators.hpp"

#if defined( RAPIDGZIP_HAVE_VENDOR_ZSTD )
#include "formats/ZstdWriter.hpp"
#endif
#if defined( RAPIDGZIP_HAVE_VENDOR_BZIP2 )
#include "formats/Bzip2Writer.hpp"
#endif
#include "formats/Lz4Writer.hpp"

#include "BenchmarkHelpers.hpp"

using namespace rapidgzip;

namespace {

void
printFormatRow(const char* format, const char* tool, std::size_t parallelism, double ratio,
               const bench::Measurement& bandwidth, const char* paper)
{
    std::printf("  %-8s %-24s P=%-4zu ratio %-6.2f %10.2f ± %-8.2f MB/s   [paper: %s]\n",
                format, tool, parallelism, ratio,
                bandwidth.mean / 1e6, bandwidth.stddev / 1e6, paper);
    std::fflush(stdout);
}

[[nodiscard]] ChunkFetcherConfiguration
config(std::size_t parallelism)
{
    ChunkFetcherConfiguration result;
    result.parallelism = parallelism;
    result.chunkSizeBytes = 1 * MiB;
    return result;
}

}  // namespace

int
main()
{
    bench::printHeader("Table 4: cross-format decompression comparison");

    const auto data = workloads::silesiaLikeData(bench::scaledSize(32 * MiB), 0x7AB1E7);
    const BufferView span{ data.data(), data.size() };
    const auto repeats = bench::benchRepeats(3);

    const auto gzipFile = compressGzipLike(span, 6);
    const auto bgzfFile = writeBgzf(span, 6);

    const auto ratioOf = [&](const auto& file) {
        return static_cast<double>(data.size()) / static_cast<double>(file.size());
    };

    /* --- P = 1 --- */
    printFormatRow("gzip", "rapidgzip", 1, ratioOf(gzipFile),
                   bench::measureBandwidth(data.size(), repeats, [&]() {
                       ParallelGzipReader reader(std::make_unique<MemoryFileReader>(gzipFile),
                                                 config(1));
                       (void)reader.decompressAll();
                   }),
                   "0.153 GB/s");
    printFormatRow("gzip", "sequential decoder", 1, ratioOf(gzipFile),
                   bench::measureBandwidth(data.size(), repeats, [&]() {
                       GzipReader reader(std::make_unique<MemoryFileReader>(gzipFile));
                       (void)reader.decompressAll();
                   }),
                   "0.153 GB/s");
    printFormatRow("gzip", "zlib (igzip stand-in)", 1, ratioOf(gzipFile),
                   bench::measureBandwidth(data.size(), repeats, [&]() {
                       (void)decompressWithZlib({ gzipFile.data(), gzipFile.size() });
                   }),
                   "0.656 GB/s (igzip)");
    printFormatRow("bgzip", "zlib sequential", 1, ratioOf(bgzfFile),
                   bench::measureBandwidth(data.size(), repeats, [&]() {
                       (void)decompressWithZlib({ bgzfFile.data(), bgzfFile.size() });
                   }),
                   "0.298 GB/s (bgzip)");

    /* --- P = 4 (stand-in for the paper's 16/128-core columns) --- */
    constexpr std::size_t P = 4;
    printFormatRow("gzip", "rapidgzip", P, ratioOf(gzipFile),
                   bench::measureBandwidth(data.size(), repeats, [&]() {
                       ParallelGzipReader reader(std::make_unique<MemoryFileReader>(gzipFile),
                                                 config(P));
                       (void)reader.decompressAll();
                   }),
                   "1.86 GB/s (P=16)");

    /* Index reuse: one sweep builds the bit-granular index; serialize and
     * reload it (the on-disk workflow) and measure decompression with the
     * prebuilt index — the paper's headline 'second read' number. */
    std::vector<std::uint8_t> serializedIndex;
    {
        ParallelGzipReader builder(std::make_unique<MemoryFileReader>(gzipFile), config(P));
        serializedIndex = index::serializeIndex(builder.exportIndex());
    }
    std::printf("  [index: %s on disk for %s of gzip]\n",
                formatBytes(serializedIndex.size()).c_str(),
                formatBytes(gzipFile.size()).c_str());
    printFormatRow("gzip", "rapidgzip (index)", P, ratioOf(gzipFile),
                   bench::measureBandwidth(data.size(), repeats, [&]() {
                       ParallelGzipReader reader(std::make_unique<MemoryFileReader>(gzipFile),
                                                 config(P));
                       reader.importIndex(index::deserializeIndex(
                           { serializedIndex.data(), serializedIndex.size() }));
                       (void)reader.decompressAll();
                   }),
                   "4.25 GB/s (P=16)");
    printFormatRow("bgzip", "rapidgzip (BC index)", P, ratioOf(bgzfFile),
                   bench::measureBandwidth(data.size(), repeats, [&]() {
                       ParallelGzipReader reader(std::make_unique<MemoryFileReader>(bgzfFile),
                                                 config(P));
                       (void)reader.decompressAll();
                   }),
                   "2.82 GB/s (P=16)");

    /* Checkpoint-spacing trade-off (ROADMAP open item): sparser checkpoints
     * shrink the serialized index — fewer compressed 32 KiB windows — but
     * every random access must decode from a checkpoint further away. Sweep
     * 2-3 spacings and measure index size plus cold-cache seek+read
     * latency at scattered offsets. */
    {
        std::printf("\n  Index checkpoint spacing vs size and seek latency:\n");
        Xorshift64 random(0x5EEC5);
        for (const std::size_t spacingMiB : { std::size_t(0), std::size_t(4), std::size_t(16) }) {
            auto configuration = config(P);
            configuration.checkpointSpacingBytes = spacingMiB * MiB;

            ParallelGzipReader builder(std::make_unique<MemoryFileReader>(gzipFile),
                                       configuration);
            const auto index = builder.exportIndex();
            const auto serialized = index::serializeIndex(index);

            /* Fresh reader per seek: cold chunk cache, so the latency is the
             * true decode-from-checkpoint cost, not a cache hit. */
            constexpr std::size_t SEEKS = 8;
            std::uint8_t probe[4096];
            Stopwatch stopwatch;
            for (std::size_t i = 0; i < SEEKS; ++i) {
                ParallelGzipReader reader(std::make_unique<MemoryFileReader>(gzipFile),
                                          configuration);
                reader.importIndex(index::deserializeIndex(
                    { serialized.data(), serialized.size() }));
                reader.seek(random.below(std::max<std::size_t>(1, data.size() - sizeof(probe))));
                (void)reader.read(probe, sizeof(probe));
            }
            const auto seekLatency = stopwatch.elapsed() / SEEKS;

            std::printf("    spacing %4zu MiB: %zu checkpoints, index %-10s"
                        " %8.2f ms/seek(4 KiB, cold)\n",
                        spacingMiB, index.checkpoints.size(),
                        formatBytes(serialized.size()).c_str(), seekLatency * 1e3);
            std::fflush(stdout);
        }
    }

    /* --- multi-backend rows (restored Table 4 formats) ----------------
     * Each backend writes its own parallel-friendly container, then
     * decompresses through the dispatch layer at P=1 and P=4 plus 8 cold
     * 4 KiB seeks at scattered offsets on a fresh reader each. */
    {
        struct BackendRow
        {
            std::string format;
            std::string tool;
            std::function<std::vector<std::uint8_t>()> write;
            std::string paperP1;
            std::string paperP;
        };

        std::vector<BackendRow> rows;
        rows.push_back(
            { "lz4", "formats (indep blocks)",
              [&]() { return formats::writeLz4(span, formats::Lz4Writer::BlockMaxSize::KIB256); },
              "3.56 GB/s", "n/a (lz4 has no parallel tool row)" });
#if defined( RAPIDGZIP_HAVE_VENDOR_ZSTD )
        rows.push_back(
            { "zstd", "formats (seekable)",
              [&]() { return formats::writeZstdSeekable(span, 3, 1 * MiB); },
              "1.05 GB/s", "8.8 GB/s (pzstd, P=128)" });
#endif
#if defined( RAPIDGZIP_HAVE_VENDOR_BZIP2 )
        rows.push_back(
            { "bzip2", "formats (block scan)",
              [&]() { return formats::writeBzip2(span, 1); },
              "0.048 GB/s", "1.3 GB/s (pbzip2, P=16)" });
#endif

        std::printf("\n  Restored multi-backend rows (decompress + cold seek):\n");
        Xorshift64 random(0xBEEF5);
        for (const auto& row : rows) {
            const auto file = row.write();

            const auto bandwidth1 = bench::measureBandwidth(data.size(), repeats, [&]() {
                auto decompressor = formats::makeDecompressor(
                    std::make_unique<MemoryFileReader>(file), config(1));
                (void)decompressor->decompress({});
            });
            printFormatRow(row.format.c_str(), row.tool.c_str(), 1, ratioOf(file),
                           bandwidth1, row.paperP1.c_str());

            const auto bandwidthP = bench::measureBandwidth(data.size(), repeats, [&]() {
                auto decompressor = formats::makeDecompressor(
                    std::make_unique<MemoryFileReader>(file), config(P));
                (void)decompressor->decompress({});
            });
            printFormatRow(row.format.c_str(), row.tool.c_str(), P, ratioOf(file),
                           bandwidthP, row.paperP.c_str());

            constexpr std::size_t SEEKS = 8;
            std::uint8_t probe[4096];
            Stopwatch stopwatch;
            std::size_t seekPointCount = 0;
            for (std::size_t i = 0; i < SEEKS; ++i) {
                auto decompressor = formats::makeDecompressor(
                    std::make_unique<MemoryFileReader>(file), config(P));
                seekPointCount = decompressor->seekPoints().size();
                (void)decompressor->readAt(
                    random.below(std::max<std::size_t>(1, data.size() - sizeof(probe))),
                    probe, sizeof(probe));
            }
            const auto seekLatency = stopwatch.elapsed() / SEEKS;
            std::printf("  %-8s %-24s %zu seek points, %8.2f ms/seek(4 KiB, cold)\n",
                        row.format.c_str(), "", seekPointCount, seekLatency * 1e3);
            std::fflush(stdout);
        }
    }

    std::printf("\n  Expected shape (paper Table 4): single-threaded rapidgzip ≈ the\n"
                "  sequential decoder and below zlib; with parallelism rapidgzip\n"
                "  overtakes every single-threaded row, the prebuilt index beats the\n"
                "  index-building first read, and BGZF parallelizes for free.\n"
                "  zstd and lz4 beat every gzip row at P=1 (cheaper entropy stage);\n"
                "  bzip2 is slowest serially but its independent blocks scale near-\n"
                "  linearly; zstd's seek table gives the cheapest cold seeks.\n");
    return 0;
}
