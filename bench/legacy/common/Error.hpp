#pragma once

/* Shim for the vendored pre-PR baseline (see ../README.md): the legacy
 * headers were copied verbatim with their namespace renamed, so their
 * `#include "../common/Error.hpp"` lands here; the error vocabulary itself
 * is unchanged and simply aliased in from the live tree. */

#include "common/Error.hpp"

namespace rapidgzip_legacy {

using rapidgzip::Error;
using rapidgzip::toString;

}  // namespace rapidgzip_legacy
