#pragma once

/* Shim for the vendored pre-PR baseline (see ../README.md): aliases the
 * live tree's unchanged utility vocabulary into the legacy namespace. */

#include "common/Util.hpp"

namespace rapidgzip_legacy {

using rapidgzip::KiB;
using rapidgzip::MiB;
using rapidgzip::GiB;
using rapidgzip::ceilDiv;
using rapidgzip::VectorView;
using rapidgzip::BufferView;

}  // namespace rapidgzip_legacy
