#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "HuffmanCodingBase.hpp"

namespace rapidgzip_legacy {

/**
 * Single-level full-length LUT decoder: one table with 2^maxCodeLength
 * entries, each holding (symbol, code length), indexed directly by the
 * peeked bits. Decoding is one load per symbol — the fastest possible — but
 * construction fills 2^(maxLength - length) entries per symbol, which gets
 * expensive for 15-bit codes. The ablation benchmark quantifies exactly this
 * trade-off against the two-level layout.
 */
class HuffmanCoding final : public HuffmanCodingBase<HuffmanCoding>
{
    friend class HuffmanCodingBase<HuffmanCoding>;

public:
    [[nodiscard]] int
    decode( BitReader& bitReader ) const
    {
        if ( bitReader.eof() ) {
            return DECODE_EOF;
        }
        const auto bits = bitReader.peek( m_maxLength );
        const auto entry = m_lookupTable[bits];
        if ( entry.length == 0 ) {
            return DECODE_INVALID;
        }
        if ( entry.length > bitReader.bitsLeft() ) {
            return DECODE_EOF;  /* matched only thanks to EOF zero-padding */
        }
        bitReader.skip( entry.length );
        return entry.symbol;
    }

private:
    struct Entry
    {
        std::uint16_t symbol{ 0 };
        std::uint8_t length{ 0 };  /* 0 = invalid bit pattern */
    };

    [[nodiscard]] bool
    buildLookupTables()
    {
        m_lookupTable.assign( std::size_t( 1 ) << m_maxLength, Entry{} );
        for ( const auto& code : m_codes ) {
            const Entry entry{ code.symbol, code.length };
            const auto stride = std::size_t( 1 ) << code.length;
            for ( std::size_t index = code.reversedCode; index < m_lookupTable.size();
                  index += stride ) {
                m_lookupTable[index] = entry;
            }
        }
        return true;
    }

    std::vector<Entry> m_lookupTable;
};

}  // namespace rapidgzip_legacy
