#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "../bits/BitReader.hpp"
#include "../common/Util.hpp"

namespace rapidgzip_legacy {

/**
 * Shared canonical-Huffman machinery (CRTP). Derived classes only decide the
 * lookup-table layout; code assignment, Kraft validation, and the decode()
 * result conventions live here so every decoder variant is interchangeable
 * in the benchmarks and in the Deflate decoder:
 *
 *   decode() >= 0 : decoded symbol
 *   DECODE_EOF    : the BitReader ran out of input before this symbol
 *   DECODE_INVALID: the peeked bits do not start a valid code
 *
 * Codes are stored bit-reversed because Deflate writes Huffman codes
 * MSB-first into an LSB-first bit stream, so an LSB-first reader sees the
 * reversed code — exactly the form a LUT indexed by peeked bits needs.
 */
template<typename Derived>
class HuffmanCodingBase
{
public:
    static constexpr int DECODE_EOF = -1;
    static constexpr int DECODE_INVALID = -2;

    static constexpr unsigned MAX_CODE_LENGTH = 15;  /* Deflate limit */

    struct CanonicalCode
    {
        std::uint16_t symbol{ 0 };
        std::uint16_t reversedCode{ 0 };
        std::uint8_t length{ 0 };
    };

    /**
     * Build decoding tables from per-symbol code lengths (length 0 = symbol
     * unused). Returns false and leaves the coding unusable for
     * over-subscribed length distributions; incomplete codes are accepted
     * (unmapped bit patterns decode to DECODE_INVALID), matching Deflate's
     * rules for distance codes.
     */
    [[nodiscard]] bool
    initializeFromLengths( VectorView<std::uint8_t> codeLengths )
    {
        m_maxLength = 0;
        std::array<std::uint16_t, MAX_CODE_LENGTH + 1> countPerLength{};
        for ( const auto length : codeLengths ) {
            if ( length > MAX_CODE_LENGTH ) {
                return false;
            }
            if ( length > 0 ) {
                ++countPerLength[length];
                if ( length > m_maxLength ) {
                    m_maxLength = length;
                }
            }
        }
        if ( m_maxLength == 0 ) {
            return false;
        }

        /* Kraft inequality: reject over-subscribed codes. The remainder at
         * the maximum length is kept so callers can distinguish complete
         * codes (remainder 0) from incomplete ones — Deflate encoders only
         * emit complete codes (except the single-distance-code case), so the
         * block finders reject incomplete codes as "non-optimal". */
        std::int64_t available = 1;
        for ( unsigned length = 1; length <= m_maxLength; ++length ) {
            available <<= 1U;
            available -= countPerLength[length];
            if ( available < 0 ) {
                return false;
            }
        }
        m_kraftRemainder = available;

        /* Canonical first-code per length, then assign in symbol order. */
        std::array<std::uint16_t, MAX_CODE_LENGTH + 2> nextCode{};
        std::uint16_t code = 0;
        for ( unsigned length = 1; length <= m_maxLength; ++length ) {
            code = static_cast<std::uint16_t>( ( code + countPerLength[length - 1] ) << 1U );
            nextCode[length] = code;
        }

        m_codes.clear();
        m_codes.reserve( codeLengths.size() );
        for ( std::size_t symbol = 0; symbol < codeLengths.size(); ++symbol ) {
            const auto length = codeLengths[symbol];
            if ( length == 0 ) {
                continue;
            }
            const auto assigned = nextCode[length]++;
            m_codes.push_back( { static_cast<std::uint16_t>( symbol ),
                                 reverseBits( assigned, length ),
                                 length } );
        }

        return static_cast<Derived*>( this )->buildLookupTables();
    }

    [[nodiscard]] unsigned
    maxCodeLength() const noexcept
    {
        return m_maxLength;
    }

    /** Number of symbols with a non-zero code length. */
    [[nodiscard]] std::size_t
    codeCount() const noexcept
    {
        return m_codes.size();
    }

    /**
     * True when the code saturates the Kraft inequality — every bit pattern
     * decodes to a symbol. Only meaningful after initializeFromLengths()
     * returned true.
     */
    [[nodiscard]] bool
    isCompleteCode() const noexcept
    {
        return m_kraftRemainder == 0;
    }

protected:
    [[nodiscard]] static std::uint16_t
    reverseBits( std::uint16_t value, unsigned bitCount ) noexcept
    {
        std::uint16_t reversed = 0;
        for ( unsigned i = 0; i < bitCount; ++i ) {
            reversed = static_cast<std::uint16_t>( ( reversed << 1U ) | ( value & 1U ) );
            value >>= 1U;
        }
        return reversed;
    }

    std::vector<CanonicalCode> m_codes;
    unsigned m_maxLength{ 0 };
    std::int64_t m_kraftRemainder{ 0 };
};

}  // namespace rapidgzip_legacy
