#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "HuffmanCodingBase.hpp"

namespace rapidgzip_legacy {

/**
 * Two-level zlib-style LUT decoder: a root table indexed by the first
 * ROOT_BITS peeked bits resolves short codes directly; longer codes chain
 * into per-prefix subtables sized for the longest code sharing that prefix.
 * Construction touches only 2^ROOT_BITS + small subtables instead of
 * 2^maxCodeLength entries, so rebuilding the tables every Dynamic Deflate
 * block (~every 50-100 KiB of output) stays cheap even for pathological
 * 15-bit codes — at the price of one extra dependent load when decoding a
 * long code.
 */
class HuffmanCodingDoubleLUT final : public HuffmanCodingBase<HuffmanCodingDoubleLUT>
{
    friend class HuffmanCodingBase<HuffmanCodingDoubleLUT>;

public:
    static constexpr unsigned ROOT_BITS = 9;

    [[nodiscard]] int
    decode( BitReader& bitReader ) const
    {
        if ( bitReader.eof() ) {
            return DECODE_EOF;
        }
        const auto bits = bitReader.peek( m_maxLength );
        const auto& root = m_rootTable[bits & m_rootMask];
        if ( !root.isSubtable ) {
            if ( root.length == 0 ) {
                return DECODE_INVALID;
            }
            if ( root.length > bitReader.bitsLeft() ) {
                return DECODE_EOF;  /* matched only thanks to EOF zero-padding */
            }
            bitReader.skip( root.length );
            return static_cast<int>( root.value );
        }
        const auto subIndex = ( bits >> m_rootBits ) & ( ( std::uint64_t( 1 ) << root.length ) - 1U );
        const auto& sub = m_subTable[root.value + subIndex];
        if ( sub.length == 0 ) {
            return DECODE_INVALID;
        }
        if ( sub.length > bitReader.bitsLeft() ) {
            return DECODE_EOF;
        }
        bitReader.skip( sub.length );
        return sub.symbol;
    }

private:
    struct RootEntry
    {
        std::uint16_t value{ 0 };   /* symbol, or subtable offset when isSubtable */
        std::uint8_t length{ 0 };   /* code length, or subtable index bit count */
        std::uint8_t isSubtable{ 0 };
    };

    struct SubEntry
    {
        std::uint16_t symbol{ 0 };
        std::uint8_t length{ 0 };  /* FULL code length (root + sub bits consumed) */
    };

    [[nodiscard]] bool
    buildLookupTables()
    {
        m_rootBits = std::min( ROOT_BITS, m_maxLength );
        m_rootMask = ( std::uint64_t( 1 ) << m_rootBits ) - 1U;
        m_rootTable.assign( std::size_t( 1 ) << m_rootBits, RootEntry{} );
        m_subTable.clear();

        /* Short codes resolve in the root table alone. */
        for ( const auto& code : m_codes ) {
            if ( code.length > m_rootBits ) {
                continue;
            }
            const RootEntry entry{ code.symbol, code.length, 0 };
            const auto stride = std::size_t( 1 ) << code.length;
            for ( std::size_t index = code.reversedCode; index < m_rootTable.size();
                  index += stride ) {
                m_rootTable[index] = entry;
            }
        }

        /* Long codes: size each prefix's subtable by its longest member. */
        std::vector<std::uint8_t> subBitsPerPrefix( m_rootTable.size(), 0 );
        for ( const auto& code : m_codes ) {
            if ( code.length <= m_rootBits ) {
                continue;
            }
            const auto prefix = code.reversedCode & m_rootMask;
            subBitsPerPrefix[prefix] = std::max<std::uint8_t>(
                subBitsPerPrefix[prefix],
                static_cast<std::uint8_t>( code.length - m_rootBits ) );
        }
        for ( std::size_t prefix = 0; prefix < subBitsPerPrefix.size(); ++prefix ) {
            const auto subBits = subBitsPerPrefix[prefix];
            if ( subBits == 0 ) {
                continue;
            }
            if ( m_subTable.size() + ( std::size_t( 1 ) << subBits ) > UINT16_MAX + std::size_t( 1 ) ) {
                return false;  /* cannot address the subtable from a uint16_t */
            }
            m_rootTable[prefix] = RootEntry{ static_cast<std::uint16_t>( m_subTable.size() ),
                                             subBits, 1 };
            m_subTable.resize( m_subTable.size() + ( std::size_t( 1 ) << subBits ) );
        }
        for ( const auto& code : m_codes ) {
            if ( code.length <= m_rootBits ) {
                continue;
            }
            const auto prefix = code.reversedCode & m_rootMask;
            const auto& root = m_rootTable[prefix];
            const auto subCode = code.reversedCode >> m_rootBits;
            const auto stride = std::size_t( 1 ) << ( code.length - m_rootBits );
            const auto subSize = std::size_t( 1 ) << root.length;
            for ( std::size_t index = subCode; index < subSize; index += stride ) {
                m_subTable[root.value + index] = SubEntry{ code.symbol, code.length };
            }
        }
        return true;
    }

    std::vector<RootEntry> m_rootTable;
    std::vector<SubEntry> m_subTable;
    unsigned m_rootBits{ ROOT_BITS };
    std::uint64_t m_rootMask{ 0 };
};

}  // namespace rapidgzip_legacy
