#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

#include "../bits/BitReader.hpp"
#include "../common/Util.hpp"
#include "../huffman/HuffmanCoding.hpp"
#include "../deflate/definitions.hpp"
#include "BlockFinder.hpp"

namespace rapidgzip_legacy::blockfinder {

/**
 * Per-filter rejection counters for paper Table 1. Each counter tallies how
 * many candidate positions the corresponding cascade stage rejected; stages
 * are ordered cheapest-first so the expensive ones run on a sharply shrinking
 * share of positions.
 */
struct FilterStatistics
{
    std::uint64_t positionsTested{ 0 };
    std::uint64_t invalidFinalBlock{ 0 };
    std::uint64_t invalidCompressionType{ 0 };
    std::uint64_t invalidPrecodeSize{ 0 };
    std::uint64_t invalidPrecodeCode{ 0 };
    std::uint64_t nonOptimalPrecodeCode{ 0 };
    std::uint64_t invalidPrecodeEncodedData{ 0 };
    std::uint64_t invalidDistanceCode{ 0 };
    std::uint64_t nonOptimalDistanceCode{ 0 };
    std::uint64_t invalidLiteralCode{ 0 };
    std::uint64_t nonOptimalLiteralCode{ 0 };
    std::uint64_t validHeaders{ 0 };
};

/**
 * "DBF rapidgzip_legacy" in paper Table 2 / §3.2: the cascaded-filter Dynamic block
 * finder. It accepts exactly the headers deflate::readDynamicCodings accepts
 * (zero false negatives vs the naive finder — enforced by testBlockFinder)
 * but rejects the overwhelming majority of positions with a few peeked bits
 * and NEVER builds the literal/distance lookup tables: after the precode
 * stage, code validity is decided from Kraft sums over the length counts
 * alone, which is the decisive cost difference vs the naive full parse.
 */
class DynamicBlockFinderRapid
{
public:
    /**
     * Run the full filter cascade on the candidate at @p position.
     * Returns true when the position holds a valid non-final Dynamic block
     * header. @p statistics may be nullptr.
     */
    [[nodiscard]] static bool
    testCandidate( BufferView data, std::size_t position, FilterStatistics* statistics )
    {
        BitReader reader( data.data(), data.size() );
        reader.seek( position );
        return testHeader( reader, statistics );
    }

    /**
     * Cascade on an already-positioned reader. The reader may consume bits;
     * callers doing sliding-bit probes reposition with seekAfterPeek().
     */
    [[nodiscard]] static bool
    testHeader( BitReader& reader, FilterStatistics* statistics )
    {
        FilterStatistics scratch;
        auto& stats = statistics != nullptr ? *statistics : scratch;
        ++stats.positionsTested;

        if ( reader.bitsLeft() < deflate::MIN_DYNAMIC_HEADER_BITS ) {
            ++stats.invalidFinalBlock;  /* position not even probeable */
            return false;
        }

        /* Stage 1+2+3: one 8-bit peek covers BFINAL, BTYPE, and HLIT. */
        const auto prefix = reader.peek( 8 );
        if ( ( prefix & 0b1U ) != 0 ) {
            ++stats.invalidFinalBlock;
            return false;
        }
        if ( ( ( prefix >> 1U ) & 0b11U ) != deflate::BLOCK_TYPE_DYNAMIC ) {
            ++stats.invalidCompressionType;
            return false;
        }
        const auto hlit = ( prefix >> 3U ) & 0b11111U;
        if ( hlit > 29 ) {
            ++stats.invalidPrecodeSize;
            return false;
        }
        reader.skip( 8 );
        const auto hdist = static_cast<unsigned>( reader.read( 5 ) );
        const auto precodeCount = 4 + static_cast<unsigned>( reader.read( 4 ) );

        /* Stage 4: precode Kraft check straight from the 3-bit lengths. */
        std::array<std::uint8_t, deflate::PRECODE_SYMBOLS> precodeLengths{};
        if ( reader.bitsLeft() < precodeCount * deflate::PRECODE_BITS ) {
            ++stats.invalidPrecodeCode;
            return false;
        }
        std::array<std::uint8_t, 8> precodeCountPerLength{};
        for ( unsigned i = 0; i < precodeCount; ++i ) {
            const auto length = static_cast<std::uint8_t>( reader.read( deflate::PRECODE_BITS ) );
            precodeLengths[deflate::PRECODE_ORDER[i]] = length;
            ++precodeCountPerLength[length];
        }
        std::int32_t available = 1;
        unsigned maxPrecodeLength = 0;
        for ( unsigned length = 1; length <= 7; ++length ) {
            available <<= 1;
            available -= precodeCountPerLength[length];
            if ( available < 0 ) {
                ++stats.invalidPrecodeCode;
                return false;
            }
            if ( precodeCountPerLength[length] > 0 ) {
                maxPrecodeLength = length;
            }
        }
        if ( maxPrecodeLength == 0 ) {
            ++stats.invalidPrecodeCode;  /* no symbols at all */
            return false;
        }
        /* Complete iff the Kraft remainder at the maximum used length is 0. */
        if ( ( available >> ( 7 - maxPrecodeLength ) ) != 0 ) {
            ++stats.nonOptimalPrecodeCode;
            return false;
        }

        /* Stage 5: decode the run-length-encoded code lengths. Only length
         * COUNTS are accumulated — no literal/distance table is ever built. */
        HuffmanCoding precode;
        if ( !precode.initializeFromLengths( { precodeLengths.data(), precodeLengths.size() } ) ) {
            ++stats.invalidPrecodeCode;  /* unreachable after the checks above */
            return false;
        }
        const std::size_t literalCount = 257 + hlit;
        const std::size_t totalLengths = literalCount + 1 + hdist;
        std::array<std::uint16_t, 16> literalCountPerLength{};
        std::array<std::uint16_t, 16> distanceCountPerLength{};
        std::size_t position = 0;
        std::uint8_t previousLength = 0;
        const auto record = [&] ( std::uint8_t length, std::size_t repeat ) {
            if ( length > 0 ) {
                /* Count into whichever side(s) of the literal/distance
                 * boundary the run covers. */
                while ( ( repeat > 0 ) && ( position < literalCount ) ) {
                    ++literalCountPerLength[length];
                    ++position;
                    --repeat;
                }
                distanceCountPerLength[length] =
                    static_cast<std::uint16_t>( distanceCountPerLength[length] + repeat );
                position += repeat;
            } else {
                position += repeat;
            }
        };
        while ( position < totalLengths ) {
            const auto symbol = precode.decode( reader );
            if ( symbol < 0 ) {
                ++stats.invalidPrecodeEncodedData;
                return false;
            }
            if ( symbol <= 15 ) {
                record( static_cast<std::uint8_t>( symbol ), 1 );
                previousLength = static_cast<std::uint8_t>( symbol );
                continue;
            }
            std::size_t repeat = 0;
            std::uint8_t value = 0;
            if ( symbol == 16 ) {
                if ( ( position == 0 ) || ( reader.bitsLeft() < 2 ) ) {
                    ++stats.invalidPrecodeEncodedData;
                    return false;
                }
                repeat = 3 + reader.read( 2 );
                value = previousLength;
            } else if ( symbol == 17 ) {
                if ( reader.bitsLeft() < 3 ) {
                    ++stats.invalidPrecodeEncodedData;
                    return false;
                }
                repeat = 3 + reader.read( 3 );
                previousLength = 0;  /* a following symbol 16 repeats the zero */
            } else {
                if ( reader.bitsLeft() < 7 ) {
                    ++stats.invalidPrecodeEncodedData;
                    return false;
                }
                repeat = 11 + reader.read( 7 );
                previousLength = 0;
            }
            if ( position + repeat > totalLengths ) {
                ++stats.invalidPrecodeEncodedData;
                return false;
            }
            record( value, repeat );
        }

        /* Stage 6: distance code from counts (HDIST range folded in here,
         * matching the paper's cascade order). */
        if ( hdist > 29 ) {
            ++stats.invalidDistanceCode;
            return false;
        }
        if ( !checkCode( distanceCountPerLength, /* singleCodeMayBeIncomplete */ true,
                         stats.invalidDistanceCode, stats.nonOptimalDistanceCode ) ) {
            return false;
        }

        /* Stage 7: literal/length code from counts. */
        if ( !checkCode( literalCountPerLength, /* singleCodeMayBeIncomplete */ false,
                         stats.invalidLiteralCode, stats.nonOptimalLiteralCode ) ) {
            return false;
        }

        ++stats.validHeaders;
        return true;
    }

    /** Sliding probe over every bit offset; seekAfterPeek keeps the common
     * reject path free of memory refetches. */
    [[nodiscard]] std::size_t
    find( BufferView data, std::size_t fromBit )
    {
        BitReader reader( data.data(), data.size() );
        const auto sizeBits = reader.sizeInBits();
        for ( auto offset = fromBit; offset + deflate::MIN_DYNAMIC_HEADER_BITS <= sizeBits;
              ++offset ) {
            reader.seekAfterPeek( offset );
            if ( testHeader( reader, &m_statistics ) ) {
                return offset;
            }
        }
        return NOT_FOUND;
    }

    [[nodiscard]] const FilterStatistics&
    statistics() const noexcept
    {
        return m_statistics;
    }

private:
    /**
     * Kraft-sum validity from per-length symbol counts: over-subscribed is
     * invalid, incomplete is "non-optimal" (rejected — real encoders emit
     * complete codes), except the legal single-symbol distance code.
     */
    [[nodiscard]] static bool
    checkCode( const std::array<std::uint16_t, 16>& countPerLength,
               bool singleCodeMayBeIncomplete,
               std::uint64_t& invalidCounter,
               std::uint64_t& nonOptimalCounter )
    {
        std::int32_t available = 1;
        unsigned maxLength = 0;
        std::size_t codeCount = 0;
        for ( unsigned length = 1; length <= 15; ++length ) {
            available <<= 1;
            available -= countPerLength[length];
            if ( available < 0 ) {
                ++invalidCounter;
                return false;
            }
            if ( countPerLength[length] > 0 ) {
                maxLength = length;
                codeCount += countPerLength[length];
            }
        }
        if ( codeCount == 0 ) {
            if ( singleCodeMayBeIncomplete ) {
                return true;  /* no distance code at all is legal */
            }
            ++nonOptimalCounter;  /* empty literal code can never be complete */
            return false;
        }
        const bool complete = ( available >> ( 15 - maxLength ) ) == 0;
        if ( !complete && !( singleCodeMayBeIncomplete && ( codeCount == 1 ) ) ) {
            ++nonOptimalCounter;
            return false;
        }
        return true;
    }

    FilterStatistics m_statistics;
};

}  // namespace rapidgzip_legacy::blockfinder
