#pragma once

#include <cstddef>
#include <limits>

namespace rapidgzip_legacy::blockfinder {

/**
 * Common contract of all block finders (paper §3.2): given a byte span and a
 * starting BIT offset, return the bit offset of the first candidate block at
 * or after it, or NOT_FOUND. Dynamic-block finders (the four DBF variants)
 * report the offset of the BFINAL bit of a non-final Dynamic block header;
 * the NonCompressedBlockFinder reports the byte-aligned offset of a stored
 * block's LEN field (its 3 header bits lie unrecoverably in the padding
 * before it).
 *
 * All finders are probabilistic in the same direction: a reported offset is
 * only a *candidate* — validated downstream by actually decoding from it —
 * but a real block start at or after `fromBit` is never skipped (zero false
 * negatives), which is what makes decoding from guessed offsets sound.
 */
inline constexpr std::size_t NOT_FOUND = std::numeric_limits<std::size_t>::max();

}  // namespace rapidgzip_legacy::blockfinder
