#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <utility>
#include <vector>

#include "../common/Error.hpp"

namespace rapidgzip_legacy {

/**
 * LSB-first (Deflate bit order) bit reader over an in-memory buffer with a
 * 64-bit refill buffer — the design measured in paper Fig. 7: because the
 * refill amortizes over up to 64 buffered bits, the per-call cost is almost
 * independent of the requested bit count, so bandwidth grows nearly linearly
 * with bits per call.
 *
 * Semantics:
 *  - read()/peek() support 1..32 bits per call.
 *  - peek() zero-pads past the end of the data; it never fails.
 *  - read()/skip() past the end consume virtual zero bits; eof() becomes
 *    true once the cursor passed the last real bit. This matches what a
 *    Huffman decoder needs to cleanly detect end-of-input.
 *  - seek()/tell() address absolute BIT offsets.
 */
class BitReader
{
public:
    static constexpr unsigned MAX_BIT_COUNT = 32;

    BitReader( const std::uint8_t* data, std::size_t sizeInBytes ) noexcept :
        m_data( data ),
        m_sizeInBytes( sizeInBytes )
    {}

    /** Owning overload, e.g. for reading a whole compressed stream. */
    explicit BitReader( std::vector<std::uint8_t> buffer ) :
        m_ownedBuffer( std::move( buffer ) ),
        m_data( m_ownedBuffer.data() ),
        m_sizeInBytes( m_ownedBuffer.size() )
    {}

    BitReader( const BitReader& other ) :
        m_ownedBuffer( other.m_ownedBuffer ),
        m_data( m_ownedBuffer.empty() ? other.m_data : m_ownedBuffer.data() ),
        m_sizeInBytes( other.m_sizeInBytes )
    {
        seek( other.tell() );
    }

    BitReader& operator=( const BitReader& ) = delete;
    BitReader( BitReader&& ) = default;

    /** Read @p bitCount (1..32) bits; the first bit read is the result's LSB. */
    [[nodiscard]] std::uint64_t
    read( unsigned bitCount )
    {
        assert( ( bitCount >= 1 ) && ( bitCount <= MAX_BIT_COUNT ) );
        if ( m_bufferBits < bitCount ) {
            refill();
            if ( m_bufferBits < bitCount ) {
                return readPastEnd( bitCount );
            }
        }
        const auto result = m_buffer & maskLowBits( bitCount );
        m_buffer >>= bitCount;
        m_bufferBits -= bitCount;
        return result;
    }

    /** Like read() but without consuming; zero-padded past the end. */
    [[nodiscard]] std::uint64_t
    peek( unsigned bitCount )
    {
        assert( ( bitCount >= 1 ) && ( bitCount <= MAX_BIT_COUNT ) );
        if ( m_bufferBits < bitCount ) {
            refill();
        }
        return m_buffer & maskLowBits( bitCount );
    }

    void
    skip( unsigned bitCount )
    {
        assert( bitCount <= MAX_BIT_COUNT );
        if ( m_bufferBits < bitCount ) {
            refill();
            if ( m_bufferBits < bitCount ) {
                (void)readPastEnd( bitCount );
                return;
            }
        }
        m_buffer >>= bitCount;
        m_bufferBits -= bitCount;
    }

    /** Absolute bit offset of the next bit to be returned. */
    [[nodiscard]] std::size_t
    tell() const noexcept
    {
        return m_byteOffset * 8U - m_bufferBits + m_overrunBits;
    }

    void
    seek( std::size_t bitOffset )
    {
        const auto sizeBits = sizeInBits();
        if ( bitOffset > sizeBits ) {
            bitOffset = sizeBits;
        }
        m_byteOffset = bitOffset / 8U;
        m_buffer = 0;
        m_bufferBits = 0;
        m_overrunBits = 0;
        const auto subBit = static_cast<unsigned>( bitOffset % 8U );
        if ( subBit > 0 ) {
            refill();
            m_buffer >>= subBit;
            m_bufferBits -= subBit;
        }
    }

    /**
     * Cheap re-seek for probe loops (block finders test millions of candidate
     * bit offsets with peek()): when @p bitOffset lies at or ahead of the
     * cursor but still inside the refill buffer, reposition by shifting the
     * buffer instead of reloading from memory — no committed read, no byte
     * refetch. Falls back to a full seek() otherwise, so it is always safe to
     * call with any target offset.
     */
    void
    seekAfterPeek( std::size_t bitOffset )
    {
        const auto current = tell();
        if ( ( bitOffset >= current ) && ( bitOffset - current <= m_bufferBits ) ) {
            const auto delta = static_cast<unsigned>( bitOffset - current );
            if ( delta >= 64U ) {
                /* Shifting a uint64_t by 64 is undefined behavior; a full
                 * 64-bit refill buffer can make delta exactly 64. */
                m_buffer = 0;
                m_bufferBits = 0;
            } else {
                m_buffer >>= delta;
                m_bufferBits -= delta;
            }
            return;
        }
        seek( bitOffset );
    }

    /** Advance to the next byte boundary (gzip stored blocks, headers). */
    void
    alignToByte()
    {
        const auto position = tell();
        const auto remainder = position % 8U;
        if ( remainder != 0 ) {
            seek( position + 8U - remainder );
        }
    }

    [[nodiscard]] bool
    eof() const noexcept
    {
        return tell() >= sizeInBits();
    }

    [[nodiscard]] std::size_t
    sizeInBits() const noexcept
    {
        return m_sizeInBytes * 8U;
    }

    [[nodiscard]] std::size_t
    bitsLeft() const noexcept
    {
        const auto position = tell();
        const auto sizeBits = sizeInBits();
        return position >= sizeBits ? 0 : sizeBits - position;
    }

private:
    [[nodiscard]] static constexpr std::uint64_t
    maskLowBits( unsigned bitCount ) noexcept
    {
        return ( std::uint64_t( 1 ) << bitCount ) - 1U;
    }

    void
    refill() noexcept
    {
    #if defined( __BYTE_ORDER__ ) && ( __BYTE_ORDER__ == __ORDER_LITTLE_ENDIAN__ )
        /* Fast path: with an empty buffer, slurp 8 bytes at once. On a
         * little-endian host the in-memory byte order already matches the
         * LSB-first bit order Deflate requires. */
        if ( ( m_bufferBits == 0 ) && ( m_byteOffset + sizeof( std::uint64_t ) <= m_sizeInBytes ) ) {
            std::memcpy( &m_buffer, m_data + m_byteOffset, sizeof( std::uint64_t ) );
            m_byteOffset += sizeof( std::uint64_t );
            m_bufferBits = 64U;
            return;
        }
    #endif
        while ( ( m_bufferBits <= 56U ) && ( m_byteOffset < m_sizeInBytes ) ) {
            m_buffer |= std::uint64_t( m_data[m_byteOffset++] ) << m_bufferBits;
            m_bufferBits += 8U;
        }
    }

    /** Cold path: consume the remaining real bits plus virtual zero padding. */
    std::uint64_t
    readPastEnd( unsigned bitCount ) noexcept
    {
        const auto result = m_buffer;  /* high bits are already zero */
        m_overrunBits += bitCount - m_bufferBits;
        m_buffer = 0;
        m_bufferBits = 0;
        return result;
    }

    std::vector<std::uint8_t> m_ownedBuffer;
    const std::uint8_t* m_data{ nullptr };
    std::size_t m_sizeInBytes{ 0 };

    std::size_t m_byteOffset{ 0 };   /**< next byte to load into the buffer */
    std::uint64_t m_buffer{ 0 };
    unsigned m_bufferBits{ 0 };
    std::size_t m_overrunBits{ 0 };  /**< virtual zero bits consumed past EOF */
};

}  // namespace rapidgzip_legacy
