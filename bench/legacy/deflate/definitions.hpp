#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

namespace rapidgzip_legacy::deflate {

/**
 * RFC 1951 constants shared by the decoder and the block finders. Kept in
 * one place so a finder can never drift from what the decoder will actually
 * accept — the "zero false negatives vs the full parse" property the rapid
 * finder's cascaded filters depend on.
 */

inline constexpr std::size_t WINDOW_SIZE = 32768;       /**< LZ77 window (and max distance) */
inline constexpr std::size_t MAX_MATCH_LENGTH = 258;

inline constexpr unsigned MAX_LITERAL_SYMBOLS = 286;    /**< 257 + HLIT, HLIT <= 29 */
inline constexpr unsigned MAX_DISTANCE_SYMBOLS = 30;    /**< 1 + HDIST, HDIST <= 29 */
inline constexpr unsigned PRECODE_SYMBOLS = 19;
inline constexpr unsigned PRECODE_BITS = 3;             /**< each precode length is 3 bits */
inline constexpr unsigned END_OF_BLOCK = 256;

/** Block types (2-bit BTYPE field). */
inline constexpr std::uint64_t BLOCK_TYPE_STORED = 0;
inline constexpr std::uint64_t BLOCK_TYPE_FIXED = 1;
inline constexpr std::uint64_t BLOCK_TYPE_DYNAMIC = 2;

/** Order in which the precode code lengths are transmitted (RFC 1951 §3.2.7). */
inline constexpr std::array<std::uint8_t, PRECODE_SYMBOLS> PRECODE_ORDER = {
    16, 17, 18, 0, 8, 7, 9, 6, 10, 5, 11, 4, 12, 3, 13, 2, 14, 1, 15
};

/** Length symbol 257+i -> base length and extra bits. */
inline constexpr std::array<std::uint16_t, 29> LENGTH_BASE = {
    3, 4, 5, 6, 7, 8, 9, 10, 11, 13, 15, 17, 19, 23, 27, 31,
    35, 43, 51, 59, 67, 83, 99, 115, 131, 163, 195, 227, 258
};

inline constexpr std::array<std::uint8_t, 29> LENGTH_EXTRA_BITS = {
    0, 0, 0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2,
    3, 3, 3, 3, 4, 4, 4, 4, 5, 5, 5, 5, 0
};

/** Distance symbol 0..29 -> base distance and extra bits. */
inline constexpr std::array<std::uint16_t, 30> DISTANCE_BASE = {
    1, 2, 3, 4, 5, 7, 9, 13, 17, 25, 33, 49, 65, 97, 129, 193,
    257, 385, 513, 769, 1025, 1537, 2049, 3073, 4097, 6145, 8193, 12289, 16385, 24577
};

inline constexpr std::array<std::uint8_t, 30> DISTANCE_EXTRA_BITS = {
    0, 0, 0, 0, 1, 1, 2, 2, 3, 3, 4, 4, 5, 5, 6, 6,
    7, 7, 8, 8, 9, 9, 10, 10, 11, 11, 12, 12, 13, 13
};

/** Smallest possible Dynamic block header: 3 + 5 + 5 + 4 + 4*3 bits. */
inline constexpr std::size_t MIN_DYNAMIC_HEADER_BITS = 3 + 5 + 5 + 4 + 4 * PRECODE_BITS;

}  // namespace rapidgzip_legacy::deflate
