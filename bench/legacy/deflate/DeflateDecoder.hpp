#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <limits>

#include "../bits/BitReader.hpp"
#include "../common/Error.hpp"
#include "../common/Util.hpp"
#include "DecodedData.hpp"
#include "DynamicHeader.hpp"
#include "definitions.hpp"

namespace rapidgzip_legacy::deflate {

namespace detail {

/** The fixed (BTYPE 01) codings, built once per process (magic static). */
struct FixedCodings
{
    FixedCodings()
    {
        std::array<std::uint8_t, 288> literalLengths{};
        for ( std::size_t i = 0; i < 144; ++i ) {
            literalLengths[i] = 8;
        }
        for ( std::size_t i = 144; i < 256; ++i ) {
            literalLengths[i] = 9;
        }
        for ( std::size_t i = 256; i < 280; ++i ) {
            literalLengths[i] = 7;
        }
        for ( std::size_t i = 280; i < 288; ++i ) {
            literalLengths[i] = 8;
        }
        std::array<std::uint8_t, 32> distanceLengths{};
        distanceLengths.fill( 5 );
        /* Both are complete by construction; failure is impossible. */
        (void)codings.literal.initializeFromLengths( { literalLengths.data(),
                                                       literalLengths.size() } );
        (void)codings.distance.initializeFromLengths( { distanceLengths.data(),
                                                        distanceLengths.size() } );
        codings.distanceUsable = true;
    }

    DynamicHuffmanCodings codings;
};

[[nodiscard]] inline const DynamicHuffmanCodings&
fixedCodings()
{
    static const FixedCodings instance;
    return instance.codings;
}

}  // namespace detail

/**
 * From-scratch raw-Deflate decoder that can start at ANY bit offset — the
 * first stage of the paper's two-stage scheme (§3.3). Two operating modes:
 *
 *  - window known (setInitialWindow): conventional 8-bit decoding into
 *    DecodedData::plain — used for the first chunk of a stream and for
 *    sequential re-decodes where the window has already been propagated;
 *  - window unknown (default): 16-bit marker decoding into
 *    DecodedData::marked, falling back to conventional decoding once the
 *    trailing WINDOW_SIZE outputs are marker-free (every later
 *    back-reference then provably resolves inside the chunk).
 *
 * decode() consumes whole blocks and stops at a block boundary: before a
 * block whose header would start at or after @p untilBitOffset, after the
 * final block (BFINAL), once @p maxBytes have been produced, or on error.
 * The bit offset of the stopping boundary is reported so chunks can be
 * stitched exactly.
 */
class Decoder
{
public:
    struct Result
    {
        Error error{ Error::NONE };
        bool reachedFinalBlock{ false };
        /** Bit offset of the first unconsumed block boundary: where the next
         * block (or the gzip footer, after BFINAL) begins. On error: the
         * boundary before the failed block. */
        std::size_t endBitOffset{ 0 };
        std::size_t blockCount{ 0 };
    };

    /** Provide the up-to-WINDOW_SIZE bytes preceding the stream position;
     * switches the decoder to conventional 8-bit decoding from the start.
     * An empty view is a valid window (start of a gzip member). */
    void
    setInitialWindow( BufferView window )
    {
        const auto size = std::min( window.size(), WINDOW_SIZE );
        m_windowSize = size;
        for ( std::size_t i = 0; i < size; ++i ) {
            m_window[i] = window[window.size() - size + i];
        }
        m_plainMode = true;
    }

    /** The next input is the LEN/NLEN field of a stored block whose 3
     * header bits lie unreadably before the discovered offset (the
     * NonCompressedBlockFinder reports the byte-aligned LEN position).
     * BFINAL is assumed 0; a wrong assumption surfaces as a decode error in
     * a later block and is handled by the chunk fetcher's re-decode path. */
    void
    setStartAtStoredData( bool startAtStoredData ) noexcept
    {
        m_startAtStoredData = startAtStoredData;
    }

    [[nodiscard]] Result
    decode( BitReader& reader,
            DecodedData& data,
            std::size_t untilBitOffset = std::numeric_limits<std::size_t>::max(),
            std::size_t maxBytes = std::numeric_limits<std::size_t>::max() )
    {
        if ( m_plainMode && data.plain.empty() ) {
            data.plain.emplace_back();
        }
        /* Mid-block overrun allowance (saturating): blocks normally end well
         * before this; only a runaway block from a false block-finder
         * positive trips the in-block limit. */
        constexpr auto LIMIT = std::numeric_limits<std::size_t>::max();
        m_hardByteLimit = maxBytes > LIMIT - 2 * MAX_MATCH_LENGTH
                          ? LIMIT
                          : maxBytes + 2 * MAX_MATCH_LENGTH;

        Result result;
        result.endBitOffset = reader.tell();
        bool pendingStoredData = m_startAtStoredData;
        while ( true ) {
            if ( ( reader.tell() >= untilBitOffset ) || ( m_totalDecoded >= maxBytes ) ) {
                break;
            }

            std::uint64_t isFinal = 0;
            std::uint64_t type = BLOCK_TYPE_STORED;
            if ( pendingStoredData ) {
                pendingStoredData = false;
            } else {
                if ( reader.bitsLeft() < 3 ) {
                    result.error = Error::TRUNCATED_STREAM;
                    break;
                }
                isFinal = reader.read( 1 );
                type = reader.read( 2 );
            }

            switch ( type ) {
            case BLOCK_TYPE_STORED:
                result.error = decodeStoredBlock( reader, data );
                break;
            case BLOCK_TYPE_FIXED:
                result.error = decodeHuffmanBlock( reader, data, detail::fixedCodings() );
                break;
            case BLOCK_TYPE_DYNAMIC:
                result.error = readDynamicCodings( reader, m_codings );
                if ( result.error == Error::NONE ) {
                    result.error = decodeHuffmanBlock( reader, data, m_codings );
                }
                break;
            default:
                result.error = Error::INVALID_BLOCK_TYPE;
                break;
            }
            if ( result.error != Error::NONE ) {
                break;
            }

            ++result.blockCount;
            result.endBitOffset = reader.tell();
            maybeFallBackToPlain( data );
            if ( isFinal != 0 ) {
                result.reachedFinalBlock = true;
                break;
            }
        }
        return result;
    }

    [[nodiscard]] std::size_t
    totalDecoded() const noexcept
    {
        return m_totalDecoded;
    }

    /** True once the decoder switched (or started) in conventional 8-bit mode. */
    [[nodiscard]] bool
    inPlainMode() const noexcept
    {
        return m_plainMode;
    }

private:
    static constexpr std::size_t NO_MARKER = std::numeric_limits<std::size_t>::max();

    [[nodiscard]] Error
    decodeStoredBlock( BitReader& reader, DecodedData& data )
    {
        reader.alignToByte();
        if ( reader.bitsLeft() < 32 ) {
            return Error::TRUNCATED_STREAM;
        }
        const auto length = reader.read( 16 );
        const auto complement = reader.read( 16 );
        if ( ( length ^ complement ) != 0xFFFFU ) {
            return Error::INVALID_STORED_LENGTH;
        }
        if ( reader.bitsLeft() < length * 8 ) {
            return Error::TRUNCATED_STREAM;
        }
        for ( std::uint64_t i = 0; i < length; ++i ) {
            emitLiteral( data, static_cast<std::uint8_t>( reader.read( 8 ) ) );
            if ( m_totalDecoded >= m_hardByteLimit ) {
                return Error::EXCEEDED_OUTPUT_LIMIT;
            }
        }
        return Error::NONE;
    }

    [[nodiscard]] Error
    decodeHuffmanBlock( BitReader& reader,
                        DecodedData& data,
                        const DynamicHuffmanCodings& codings )
    {
        while ( true ) {
            const auto symbol = codings.literal.decode( reader );
            if ( symbol < 0 ) {
                return symbol == HuffmanCodingDoubleLUT::DECODE_EOF ? Error::TRUNCATED_STREAM
                                                                    : Error::INVALID_SYMBOL;
            }
            if ( symbol < static_cast<int>( END_OF_BLOCK ) ) {
                emitLiteral( data, static_cast<std::uint8_t>( symbol ) );
            } else if ( symbol == static_cast<int>( END_OF_BLOCK ) ) {
                return Error::NONE;
            } else {
                if ( symbol > 285 ) {
                    return Error::INVALID_SYMBOL;
                }
                const auto lengthIndex = static_cast<std::size_t>( symbol - 257 );
                const auto lengthExtra = LENGTH_EXTRA_BITS[lengthIndex];
                if ( reader.bitsLeft() < lengthExtra ) {
                    return Error::TRUNCATED_STREAM;
                }
                const std::size_t length = LENGTH_BASE[lengthIndex]
                                           + ( lengthExtra > 0 ? reader.read( lengthExtra ) : 0 );

                if ( !codings.distanceUsable ) {
                    return Error::INVALID_DISTANCE;
                }
                const auto distanceSymbol = codings.distance.decode( reader );
                if ( distanceSymbol < 0 ) {
                    return distanceSymbol == HuffmanCodingDoubleLUT::DECODE_EOF
                           ? Error::TRUNCATED_STREAM
                           : Error::INVALID_DISTANCE;
                }
                if ( distanceSymbol > 29 ) {
                    return Error::INVALID_DISTANCE;
                }
                const auto distanceExtra = DISTANCE_EXTRA_BITS[distanceSymbol];
                if ( reader.bitsLeft() < distanceExtra ) {
                    return Error::TRUNCATED_STREAM;
                }
                const std::size_t distance =
                    DISTANCE_BASE[distanceSymbol]
                    + ( distanceExtra > 0 ? reader.read( distanceExtra ) : 0 );

                const auto error = emitMatch( data, length, distance );
                if ( error != Error::NONE ) {
                    return error;
                }
            }
            if ( m_totalDecoded >= m_hardByteLimit ) {
                return Error::EXCEEDED_OUTPUT_LIMIT;
            }
        }
    }

    void
    emitLiteral( DecodedData& data, std::uint8_t byte )
    {
        if ( m_plainMode ) {
            data.plain.back().data.push_back( byte );
        } else {
            data.marked.push_back( byte );
        }
        ++m_totalDecoded;
    }

    /**
     * LZ77 copy. Byte-wise on purpose: overlapping copies (distance <
     * length) replicate, and in 16-bit mode copied symbols may themselves be
     * markers, which must propagate verbatim and keep the marker clock
     * (m_lastMarkerPosition) honest.
     */
    [[nodiscard]] Error
    emitMatch( DecodedData& data, std::size_t length, std::size_t distance )
    {
        if ( m_plainMode ) {
            auto& out = data.plain.back().data;
            const auto start = out.size();
            if ( distance > start + m_windowSize ) {
                return Error::EXCEEDED_WINDOW;
            }
            /* Seeded-window fast path: a back-reference reaching behind the
             * chunk start takes a contiguous run from the seeded window (the
             * window and the output never interleave within one match — once
             * the copy position enters the output it stays there), then the
             * remainder replicates byte-wise in-buffer, which handles the
             * overlapping (distance < length) case. */
            std::size_t copied = 0;
            if ( distance > start ) {
                const auto fromWindow = std::min( length, distance - start );
                const auto* const source = m_window.data() + m_windowSize - ( distance - start );
                out.insert( out.end(), source, source + fromWindow );
                copied = fromWindow;
            }
            for ( ; copied < length; ++copied ) {
                out.push_back( out[out.size() - distance] );
            }
        } else {
            auto& out = data.marked;
            /* distance <= 32768 and position >= 0 bound the marker offset. */
            for ( std::size_t i = 0; i < length; ++i ) {
                const auto position = out.size();
                std::uint16_t symbol;
                if ( distance <= position ) {
                    symbol = out[position - distance];
                } else {
                    symbol = static_cast<std::uint16_t>(
                        MARKER_BASE + ( WINDOW_SIZE - ( distance - position ) ) );
                }
                if ( symbol >= MARKER_BASE ) {
                    m_lastMarkerPosition = position;
                }
                out.push_back( symbol );
            }
        }
        m_totalDecoded += length;
        return Error::NONE;
    }

    /**
     * The paper's §3.3 fallback, checked at block granularity: once the
     * trailing WINDOW_SIZE outputs contain no marker, materialize them as a
     * real window and continue with plain 8-bit decoding — halving memory
     * traffic and skipping stage two for the rest of the chunk.
     */
    void
    maybeFallBackToPlain( DecodedData& data )
    {
        if ( m_plainMode ) {
            return;
        }
        const auto size = data.marked.size();
        if ( size < WINDOW_SIZE ) {
            return;
        }
        if ( ( m_lastMarkerPosition != NO_MARKER )
             && ( m_lastMarkerPosition + WINDOW_SIZE >= size ) ) {
            return;  /* a marker is still inside the trailing window */
        }
        m_windowSize = WINDOW_SIZE;
        for ( std::size_t i = 0; i < WINDOW_SIZE; ++i ) {
            m_window[i] = static_cast<std::uint8_t>( data.marked[size - WINDOW_SIZE + i] );
        }
        data.plain.emplace_back();
        m_plainMode = true;
    }

    DynamicHuffmanCodings m_codings;  /* reused across Dynamic blocks */

    std::array<std::uint8_t, WINDOW_SIZE> m_window{};
    std::size_t m_windowSize{ 0 };
    bool m_plainMode{ false };
    bool m_startAtStoredData{ false };
    std::size_t m_lastMarkerPosition{ NO_MARKER };
    std::size_t m_totalDecoded{ 0 };
    std::size_t m_hardByteLimit{ std::numeric_limits<std::size_t>::max() };
};

}  // namespace rapidgzip_legacy::deflate
