#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

#include "../bits/BitReader.hpp"
#include "../common/Error.hpp"
#include "../huffman/HuffmanCoding.hpp"
#include "../huffman/HuffmanCodingDoubleLUT.hpp"
#include "definitions.hpp"

namespace rapidgzip_legacy::deflate {

/**
 * The literal/length and distance codings of one Dynamic block. The
 * distance coding may legally be absent (HDIST = 0 with a zero length) or a
 * single incomplete code (RFC 1951 §3.2.7); `distanceUsable` distinguishes
 * "no distance code defined" from "defined but the symbol was invalid".
 */
struct DynamicHuffmanCodings
{
    HuffmanCodingDoubleLUT literal;
    HuffmanCodingDoubleLUT distance;
    bool distanceUsable{ false };
};

/**
 * Parse a Dynamic block header (everything after the 3 BFINAL/BTYPE bits)
 * and build the two Huffman codings. This is the single source of truth for
 * header acceptance: the naive block finder calls it directly and the rapid
 * finder's cascaded filters reproduce exactly its accept/reject behavior —
 * any divergence shows up as a false negative in testBlockFinder.
 *
 * Acceptance follows zlib (stricter than the letter of RFC 1951 where real
 * encoders are stricter too): the precode and the literal/length code must
 * be complete and not over-subscribed; the distance code must be complete
 * unless it has at most one symbol.
 */
[[nodiscard]] inline Error
readDynamicCodings( BitReader& reader, DynamicHuffmanCodings& codings )
{
    if ( reader.bitsLeft() < MIN_DYNAMIC_HEADER_BITS - 3 ) {
        return Error::TRUNCATED_STREAM;
    }
    const auto literalCount = 257 + static_cast<unsigned>( reader.read( 5 ) );
    const auto distanceCount = 1 + static_cast<unsigned>( reader.read( 5 ) );
    if ( ( literalCount > MAX_LITERAL_SYMBOLS ) || ( distanceCount > MAX_DISTANCE_SYMBOLS ) ) {
        return Error::INVALID_CODE_COUNTS;
    }
    const auto precodeCount = 4 + static_cast<unsigned>( reader.read( 4 ) );

    std::array<std::uint8_t, PRECODE_SYMBOLS> precodeLengths{};
    if ( reader.bitsLeft() < precodeCount * PRECODE_BITS ) {
        return Error::TRUNCATED_STREAM;
    }
    for ( unsigned i = 0; i < precodeCount; ++i ) {
        precodeLengths[PRECODE_ORDER[i]] = static_cast<std::uint8_t>( reader.read( PRECODE_BITS ) );
    }

    HuffmanCoding precode;  /* max length 7 -> 128-entry single-level LUT, cheap to build */
    if ( !precode.initializeFromLengths( { precodeLengths.data(), precodeLengths.size() } ) ) {
        return Error::INVALID_PRECODE;
    }
    if ( !precode.isCompleteCode() ) {
        return Error::NON_OPTIMAL_PRECODE;
    }

    /* Literal/length and distance code lengths form one contiguous
     * precode-encoded array; repeats may cross the boundary. */
    std::array<std::uint8_t, MAX_LITERAL_SYMBOLS + MAX_DISTANCE_SYMBOLS> lengths{};
    const std::size_t totalLengths = literalCount + distanceCount;
    std::size_t position = 0;
    while ( position < totalLengths ) {
        const auto symbol = precode.decode( reader );
        if ( symbol < 0 ) {
            /* A complete precode cannot produce DECODE_INVALID; only EOF. */
            return Error::TRUNCATED_STREAM;
        }
        if ( symbol <= 15 ) {
            lengths[position++] = static_cast<std::uint8_t>( symbol );
            continue;
        }
        std::size_t repeat = 0;
        std::uint8_t value = 0;
        if ( symbol == 16 ) {
            if ( position == 0 ) {
                return Error::INVALID_CODE_LENGTHS;  /* no previous length to repeat */
            }
            if ( reader.bitsLeft() < 2 ) {
                return Error::TRUNCATED_STREAM;
            }
            repeat = 3 + reader.read( 2 );
            value = lengths[position - 1];
        } else if ( symbol == 17 ) {
            if ( reader.bitsLeft() < 3 ) {
                return Error::TRUNCATED_STREAM;
            }
            repeat = 3 + reader.read( 3 );
        } else {  /* symbol == 18 */
            if ( reader.bitsLeft() < 7 ) {
                return Error::TRUNCATED_STREAM;
            }
            repeat = 11 + reader.read( 7 );
        }
        if ( position + repeat > totalLengths ) {
            return Error::INVALID_CODE_LENGTHS;
        }
        for ( std::size_t i = 0; i < repeat; ++i ) {
            lengths[position++] = value;
        }
    }

    /* Distance first: with only 30 symbols it is the cheaper check, which is
     * also why the rapid finder's cascade orders it before the literal code
     * (paper Table 1). A distance code may be entirely absent, and a
     * SINGLE-symbol distance code may be incomplete (RFC 1951 §3.2.7). */
    bool anyDistanceCode = false;
    for ( std::size_t i = 0; i < distanceCount; ++i ) {
        anyDistanceCode = anyDistanceCode || ( lengths[literalCount + i] != 0 );
    }
    codings.distanceUsable = anyDistanceCode;
    if ( anyDistanceCode ) {
        if ( !codings.distance.initializeFromLengths( { lengths.data() + literalCount,
                                                        distanceCount } ) ) {
            return Error::INVALID_DISTANCE_CODING;
        }
        if ( ( codings.distance.codeCount() > 1 ) && !codings.distance.isCompleteCode() ) {
            return Error::NON_OPTIMAL_DISTANCE_CODING;
        }
    }

    if ( !codings.literal.initializeFromLengths( { lengths.data(), literalCount } ) ) {
        return Error::INVALID_LITERAL_CODING;
    }
    if ( !codings.literal.isCompleteCode() ) {
        return Error::NON_OPTIMAL_LITERAL_CODING;
    }
    return Error::NONE;
}

}  // namespace rapidgzip_legacy::deflate
