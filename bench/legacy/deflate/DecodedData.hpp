#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "../common/Util.hpp"
#include "definitions.hpp"

namespace rapidgzip_legacy::deflate {

/**
 * Two-stage decoding intermediate format (paper §3.3). A chunk decoded from
 * an arbitrary bit offset does not know the 32 KiB window preceding it, so
 * back-references into that window cannot be resolved during decoding.
 * Instead the first stage emits 16-bit symbols:
 *
 *   value < 256            : a resolved literal byte
 *   value >= MARKER_BASE   : a marker — (value - MARKER_BASE) indexes the
 *                            unknown window, 0 = oldest byte (WINDOW_SIZE
 *                            bytes before the chunk start), WINDOW_SIZE-1 =
 *                            the byte immediately preceding the chunk
 *
 * Markers propagate through LZ77 copies, so they persist for as long as the
 * data keeps referencing the pre-chunk history. The second stage replaces
 * them via replaceMarkers() once the previous chunk's window is available.
 */
inline constexpr std::uint16_t MARKER_BASE = 32768;

/** One stretch of conventionally (8-bit) decoded output. */
struct Segment
{
    std::vector<std::uint8_t> data;

    [[nodiscard]] std::size_t
    decodedSize() const noexcept
    {
        return data.size();
    }
};

/**
 * A decoded chunk: the 16-bit "marked" prefix (possibly empty when the
 * window was known from the start), followed by 8-bit "plain" segments
 * produced after the decoder's fallback to conventional decoding — triggered
 * once the trailing WINDOW_SIZE outputs contain no markers, at which point
 * every future back-reference is guaranteed to resolve inside the chunk.
 */
struct DecodedData
{
    std::vector<std::uint16_t> marked;
    std::vector<Segment> plain;

    [[nodiscard]] std::size_t
    totalSize() const noexcept
    {
        auto size = marked.size();
        for ( const auto& segment : plain ) {
            size += segment.decodedSize();
        }
        return size;
    }
};

/**
 * Stage two: substitute every marker in @p symbols with the corresponding
 * byte of @p window and narrow the rest to bytes, writing totalSize bytes to
 * @p output. @p window holds the last window.size() bytes of output
 * preceding the chunk; the full-window case (WINDOW_SIZE bytes) is the hot
 * path the paper benchmarks at 1254 MB/s in Table 2.
 *
 * Markers reaching in front of a short window decode to 0 — a valid stream
 * never produces them (a back-reference cannot outreach the real history),
 * so they only appear for false block-finder positives, which the chunk
 * fetcher's checksum verification rejects wholesale.
 */
inline void
replaceMarkers( VectorView<std::uint16_t> symbols,
                VectorView<std::uint8_t> window,
                std::uint8_t* output ) noexcept
{
    const auto* const windowData = window.data();
    if ( window.size() >= WINDOW_SIZE ) {
        /* Hot path: any marker offset is addressable. */
        const auto* const recent = windowData + ( window.size() - WINDOW_SIZE );
        for ( std::size_t i = 0; i < symbols.size(); ++i ) {
            const auto symbol = symbols[i];
            output[i] = symbol < MARKER_BASE
                        ? static_cast<std::uint8_t>( symbol )
                        : recent[symbol - MARKER_BASE];
        }
        return;
    }

    const auto missing = WINDOW_SIZE - window.size();
    for ( std::size_t i = 0; i < symbols.size(); ++i ) {
        const auto symbol = symbols[i];
        if ( symbol < MARKER_BASE ) {
            output[i] = static_cast<std::uint8_t>( symbol );
        } else {
            const std::size_t offset = symbol - MARKER_BASE;
            output[i] = offset >= missing ? windowData[offset - missing] : std::uint8_t( 0 );
        }
    }
}

/** Convenience overload appending the resolved bytes to @p output. */
inline void
resolveInto( const DecodedData& data,
             VectorView<std::uint8_t> window,
             std::vector<std::uint8_t>& output )
{
    if ( !data.marked.empty() ) {
        const auto offset = output.size();
        output.resize( offset + data.marked.size() );
        replaceMarkers( { data.marked.data(), data.marked.size() }, window, output.data() + offset );
    }
    for ( const auto& segment : data.plain ) {
        output.insert( output.end(), segment.data.begin(), segment.data.end() );
    }
}

}  // namespace rapidgzip_legacy::deflate
