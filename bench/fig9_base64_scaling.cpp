/**
 * Figure 9 reproduction: decompression scaling on base64-encoded random data
 * compressed pigz-style. Paper result (128 cores): rapidgzip reaches
 * 8.7 GB/s without an index and 17.8 GB/s with one; pugz (sync) saturates at
 * ~1.2 GB/s; GNU gzip manages 157 MB/s and igzip 416 MB/s single-threaded.
 *
 * The decisive *shape*: rapidgzip(index) > rapidgzip(no index) > pugz(sync)
 * at matching thread counts, and all parallel tools beat the single-threaded
 * decompressors once multiple physical cores exist.
 */

#include <memory>

#include "core/ParallelGzipReader.hpp"
#include "gzip/ZlibCompressor.hpp"
#include "io/MemoryFileReader.hpp"
#include "workloads/DataGenerators.hpp"

#include "ScalingHarness.hpp"

using namespace rapidgzip;

int
main()
{
    const auto data = workloads::base64Data(bench::scaledSize(48 * MiB), 0xF19);
    const auto compressed = compressPigzLike({ data.data(), data.size() }, 6, 512 * 1024);

    /* Build the index once; importing it is what the "(index)" rows measure. */
    auto index = std::make_shared<GzipIndex>();
    {
        ParallelGzipReader builder(std::make_unique<MemoryFileReader>(compressed),
                                   bench::scalingConfig(4));
        *index = builder.exportIndex();
    }

    bench::runScaling(
        "Figure 9: parallel decompression of base64-encoded random data",
        data, compressed,
        {
            bench::rapidgzipIndexTool(index),
            bench::rapidgzipNoIndexTool(),
            bench::pugzLikeTool(true),
            bench::sequentialGzipTool(),
            bench::zlibTool(),
        });

    std::printf("\n  Expected shape (paper Fig. 9): rapidgzip(index) fastest, then\n"
                "  rapidgzip(no index), then pugz(sync); single-threaded tools last.\n"
                "  On a single-core host the parallel curves stay flat.\n");
    return 0;
}
