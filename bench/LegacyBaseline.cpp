/**
 * Pre-PR baseline measurements — see LegacyBaseline.hpp for why this is its
 * own translation unit. Everything here runs the VERBATIM vendored pre-PR
 * code under bench/legacy/.
 */

#include "LegacyBaseline.hpp"

#include <zlib.h>

#include <algorithm>

#include "legacy/bits/BitReader.hpp"
#include "legacy/blockfinder/DynamicBlockFinderRapid.hpp"
#include "legacy/deflate/DecodedData.hpp"
#include "legacy/deflate/DeflateDecoder.hpp"

#include "BenchmarkHelpers.hpp"

namespace legacybench {

double
measureBitReaderBandwidth( rapidgzip::BufferView data, unsigned bits, std::size_t repeats )
{
    volatile std::uint64_t sink = 0;
    const auto measurement = rapidgzip::bench::measureBandwidth(
        data.size(), repeats, [&] () {
            rapidgzip_legacy::BitReader reader( data.data(), data.size() );
            const auto totalBits = data.size() * 8;
            std::uint64_t sum = 0;
            for ( std::size_t position = 0; position + bits <= totalBits; position += bits ) {
                sum += reader.read( bits );
            }
            sink = sink + sum;
        } );
    return measurement.best;
}

namespace {

[[nodiscard]] rapidgzip_legacy::deflate::DecodedData
decodeImpl( rapidgzip::BufferView stream, std::size_t fromBit, bool windowKnown, bool* ok )
{
    rapidgzip_legacy::BitReader reader( stream.data(), stream.size() );
    reader.seek( fromBit );
    rapidgzip_legacy::deflate::Decoder decoder;
    if ( windowKnown ) {
        decoder.setInitialWindow( {} );
    }
    rapidgzip_legacy::deflate::DecodedData data;
    const auto result = decoder.decode( reader, data );
    *ok = result.error == rapidgzip::Error::NONE;
    return data;
}

}  // namespace

rapidgzip::bench::DecodeResult
decodeOnce( rapidgzip::BufferView stream, std::size_t fromBit, bool windowKnown )
{
    rapidgzip::bench::DecodeResult result;
    const auto data = decodeImpl( stream, fromBit, windowKnown, &result.ok );
    result.totalSize = data.totalSize();
    result.flattened.reserve( result.totalSize );
    for ( const auto symbol : data.marked ) {
        result.flattened.push_back( static_cast<std::uint8_t>( symbol & 0xFFU ) );
        result.flattened.push_back( static_cast<std::uint8_t>( symbol >> 8U ) );
    }
    for ( const auto& segment : data.plain ) {
        result.flattened.insert( result.flattened.end(),
                                 segment.data.begin(), segment.data.end() );
    }
    return result;
}

double
measureDecodeBandwidth( rapidgzip::BufferView stream, std::size_t fromBit, bool windowKnown,
                        std::size_t expectBytes, std::size_t repeats )
{
    bool allOk = true;
    const auto measurement = rapidgzip::bench::measureBandwidth(
        expectBytes, repeats, [&] () {
            bool ok = false;
            const auto data = decodeImpl( stream, fromBit, windowKnown, &ok );
            allOk = allOk && ok && ( data.totalSize() == expectBytes );
        } );
    return allOk ? measurement.best : 0.0;
}

rapidgzip::bench::FilterCounts
runFilter( rapidgzip::BufferView stream, const std::vector<std::size_t>& positions )
{
    rapidgzip_legacy::blockfinder::FilterStatistics statistics;
    rapidgzip::bench::FilterCounts counts;
    rapidgzip_legacy::BitReader reader( stream.data(), stream.size() );
    for ( const auto position : positions ) {
        reader.seekAfterPeek( position );
        counts.accepted +=
            rapidgzip_legacy::blockfinder::DynamicBlockFinderRapid::testHeader(
                reader, &statistics ) ? 1 : 0;
    }
    counts.invalidPrecodeCode = statistics.invalidPrecodeCode;
    counts.nonOptimalPrecodeCode = statistics.nonOptimalPrecodeCode;
    counts.validHeaders = statistics.validHeaders;
    return counts;
}

double
measureRejectionRate( rapidgzip::BufferView stream,
                      const std::vector<std::size_t>& positions, std::size_t repeats )
{
    volatile std::uint64_t sink = 0;
    const auto measurement = rapidgzip::bench::measureBandwidth(
        positions.size(), repeats, [&] () {
            rapidgzip_legacy::BitReader reader( stream.data(), stream.size() );
            std::uint64_t accepted = 0;
            for ( const auto position : positions ) {
                reader.seekAfterPeek( position );
                accepted += rapidgzip_legacy::blockfinder::DynamicBlockFinderRapid::testHeader(
                                reader, nullptr ) ? 1 : 0;
            }
            sink = sink + accepted;
        } );
    return measurement.best;
}

std::vector<std::uint8_t>
replaceMarkersOnce( const std::vector<std::uint16_t>& symbols,
                    const std::vector<std::uint8_t>& window )
{
    std::vector<std::uint8_t> output( symbols.size() );
    rapidgzip_legacy::deflate::replaceMarkers( { symbols.data(), symbols.size() },
                                               { window.data(), window.size() },
                                               output.data() );
    return output;
}

double
measureReplaceMarkersBandwidth( const std::vector<std::uint16_t>& symbols,
                                const std::vector<std::uint8_t>& window,
                                std::size_t repeats )
{
    std::vector<std::uint8_t> output( symbols.size() );
    volatile std::uint8_t sink = 0;
    const auto measurement = rapidgzip::bench::measureBandwidth(
        symbols.size(), repeats, [&] () {
            rapidgzip_legacy::deflate::replaceMarkers( { symbols.data(), symbols.size() },
                                                       { window.data(), window.size() },
                                                       output.data() );
            sink = sink + output[output.size() / 2];
        } );
    return measurement.best;
}

std::uint32_t
crc32Once( rapidgzip::BufferView data )
{
    return static_cast<std::uint32_t>(
        ::crc32_z( ::crc32_z( 0UL, nullptr, 0 ), data.data(), data.size() ) );
}

double
measureCrc32Bandwidth( rapidgzip::BufferView data, std::size_t repeats )
{
    volatile std::uint32_t sink = 0;
    const auto measurement = rapidgzip::bench::measureBandwidth(
        data.size(), repeats, [&] () {
            sink = sink + static_cast<std::uint32_t>(
                ::crc32_z( ::crc32_z( 0UL, nullptr, 0 ), data.data(), data.size() ) );
        } );
    return measurement.best;
}

}  // namespace legacybench
