/**
 * Ablation: Huffman decoder table layouts (paper §4.1 mentions multiple
 * Huffman decoder implementations; their construction/decode trade-off
 * matters because a Dynamic block rebuilds its tables every ~50-100 KiB).
 *
 * Compares the single-level full-length LUT (used by the Deflate decoder)
 * against the two-level zlib-style layout on (a) table construction and
 * (b) raw symbol decoding, for typical and pathological code shapes.
 */

#include <cstdio>
#include <vector>

#include "bits/BitReader.hpp"
#include "common/Util.hpp"
#include "huffman/HuffmanCoding.hpp"
#include "huffman/HuffmanCodingDoubleLUT.hpp"
#include "huffman/HuffmanCodingMultiCached.hpp"
#include "workloads/DataGenerators.hpp"

#include "BenchmarkHelpers.hpp"

using namespace rapidgzip;

namespace {

std::vector<std::uint8_t>
makeCode(std::size_t symbolCount, unsigned maxLength, std::uint64_t seed)
{
    Xorshift64 random(seed);
    std::vector<std::uint8_t> lengths(symbolCount, 0);
    lengths[0] = 1;
    lengths[1] = 1;
    std::size_t used = 2;
    while (used < symbolCount) {
        const auto victim = random.below(used);
        if (lengths[victim] >= maxLength) {
            continue;
        }
        ++lengths[victim];
        lengths[used] = lengths[victim];
        ++used;
    }
    return lengths;
}

template<typename Coding>
void
benchmarkCoding(const char* name, const std::vector<std::uint8_t>& lengths,
                const std::vector<std::uint8_t>& bitData, std::size_t repeats)
{
    /* Construction throughput (tables per second). */
    constexpr std::size_t CONSTRUCTIONS = 2000;
    Stopwatch constructionStopwatch;
    for (std::size_t i = 0; i < CONSTRUCTIONS; ++i) {
        Coding coding;
        (void)coding.initializeFromLengths({ lengths.data(), lengths.size() });
    }
    const auto constructionsPerSecond =
        static_cast<double>(CONSTRUCTIONS) / constructionStopwatch.elapsed();

    /* Decode throughput (symbols per second). */
    Coding coding;
    (void)coding.initializeFromLengths({ lengths.data(), lengths.size() });
    volatile int sink = 0;
    double symbolsPerSecond = 0;
    for (std::size_t repeat = 0; repeat < repeats; ++repeat) {
        BitReader reader(bitData.data(), bitData.size());
        std::size_t symbols = 0;
        Stopwatch decodeStopwatch;
        while (true) {
            const auto symbol = coding.decode(reader);
            if (symbol < 0) {
                break;
            }
            sink = sink + symbol;
            ++symbols;
        }
        symbolsPerSecond = std::max(symbolsPerSecond,
                                    static_cast<double>(symbols) / decodeStopwatch.elapsed());
    }

    std::printf("    %-24s %10.0f tables/s %12.1f Msymbols/s\n",
                name, constructionsPerSecond, symbolsPerSecond / 1e6);
    std::fflush(stdout);
}

/** The PR-4 multi-symbol cached LUT, driven with the decoder's
 * guaranteed-bits discipline; counts SYMBOLS (a double-literal entry
 * yields two per lookup). */
void
benchmarkMultiCached(const std::vector<std::uint8_t>& lengths,
                     const std::vector<std::uint8_t>& bitData, std::size_t repeats)
{
    constexpr std::size_t CONSTRUCTIONS = 2000;
    Stopwatch constructionStopwatch;
    for (std::size_t i = 0; i < CONSTRUCTIONS; ++i) {
        HuffmanCodingMultiCached coding;
        (void)coding.initializeFromLengths({ lengths.data(), lengths.size() });
    }
    const auto constructionsPerSecond =
        static_cast<double>(CONSTRUCTIONS) / constructionStopwatch.elapsed();

    HuffmanCodingMultiCached coding;
    (void)coding.initializeFromLengths({ lengths.data(), lengths.size() });
    volatile int sink = 0;
    double symbolsPerSecond = 0;
    for (std::size_t repeat = 0; repeat < repeats; ++repeat) {
        BitReader reader(bitData.data(), bitData.size());
        std::size_t symbols = 0;
        int accumulator = 0;
        bool done = false;
        Stopwatch decodeStopwatch;
        while (!done && reader.ensureBits(BitReader::MAX_ENSURE_BITS)) {
            const auto& entry = coding.lookup(reader.peekUnsafe(coding.cacheBits()));
            reader.consumeUnsafe(entry.bitsConsumed);
            switch (entry.kind()) {
            case HuffmanCodingMultiCached::LITERALS:
                accumulator += entry.payload;
                symbols += entry.count();
                break;
            case HuffmanCodingMultiCached::LENGTH:
                accumulator += static_cast<int>(entry.payload
                                                + reader.readUnsafe(entry.extraBits()));
                ++symbols;
                break;
            case HuffmanCodingMultiCached::END_OF_BLOCK:
                ++symbols;
                break;
            default: {
                const auto symbol = coding.fallback().decodeUnsafe(reader);
                if (symbol < 0) {
                    done = true;
                    break;
                }
                accumulator += symbol;
                ++symbols;
                break;
            }
            }
        }
        sink = sink + accumulator;
        symbolsPerSecond = std::max(symbolsPerSecond,
                                    static_cast<double>(symbols) / decodeStopwatch.elapsed());
    }

    std::printf("    %-24s %10.0f tables/s %12.1f Msymbols/s\n",
                "multi-symbol cached LUT", constructionsPerSecond, symbolsPerSecond / 1e6);
    std::fflush(stdout);
}

}  // namespace

int
main()
{
    bench::printHeader("Ablation: Huffman decoder table layouts");

    const auto repeats = bench::benchRepeats(3);
    const auto bitData = workloads::randomData(bench::scaledSize(8 * MiB), 0x4AFF);

    struct Shape
    {
        const char* name;
        std::size_t symbols;
        unsigned maxLength;
    };
    const Shape shapes[] = {
        { "typical literal code (286 syms, <=12 bit)", 286, 12 },
        { "pathological (286 syms, <=15 bit)", 286, 15 },
        { "small distance code (30 syms, <=8 bit)", 30, 8 },
        { "precode-like (19 syms, <=7 bit)", 19, 7 },
    };

    for (const auto& shape : shapes) {
        const auto lengths = makeCode(shape.symbols, shape.maxLength, 0xCAFE);
        std::printf("  %s:\n", shape.name);
        benchmarkCoding<HuffmanCoding>("single-level LUT", lengths, bitData, repeats);
        benchmarkCoding<HuffmanCodingDoubleLUT>("two-level LUT", lengths, bitData, repeats);
        benchmarkMultiCached(lengths, bitData, repeats);
    }

    std::printf("\n  Expected shape: the two-level layout constructs much faster for\n"
                "  long-code shapes (less table fill) and decodes slightly slower\n"
                "  (extra indirection) — why production decoders pick it, and why a\n"
                "  single-level table is fine for the finder's short-lived precodes.\n"
                "  The multi-symbol cached LUT (PR 4) must lead on SYMBOL throughput\n"
                "  for literal-heavy shapes — one lookup often resolves two symbols —\n"
                "  at a construction cost between the other two layouts.\n");
    return 0;
}
