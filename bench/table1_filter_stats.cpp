/**
 * Table 1 reproduction: empirical filter frequencies of the Dynamic block
 * finder on random data. The paper tests 10^12 positions; we test a scaled
 * sample (default 2^31 ≈ 2·10^9, RAPIDGZIP_BENCH_SCALE multiplies) and print
 * counts normalized *per 10^12 positions* next to the paper's numbers.
 */

#include <cinttypes>
#include <cstdio>

#include "blockfinder/DynamicBlockFinderRapid.hpp"
#include "workloads/DataGenerators.hpp"

#include "BenchmarkHelpers.hpp"

using namespace rapidgzip;
using blockfinder::DynamicBlockFinderRapid;
using blockfinder::FilterStatistics;

namespace {

void
printStatRow(const char* label, std::uint64_t count, std::uint64_t total, const char* paper)
{
    const auto scaled = static_cast<double>(count) / static_cast<double>(total) * 1e12;
    std::printf("  %-32s %14.4g   [paper: %s]\n", label, scaled, paper);
}

}  // namespace

int
main()
{
    bench::printHeader("Table 1: Dynamic block finder filter frequencies (per 1e12 positions)");

    const auto sampleBytes = bench::scaledSize(96 * MiB);
    const auto data = workloads::randomData(sampleBytes + 4096, 0x7AB1E1);
    const auto positions = sampleBytes * 8;

    FilterStatistics statistics;
    Stopwatch stopwatch;
    for (std::size_t position = 0; position < positions; ++position) {
        (void)DynamicBlockFinderRapid::testCandidate({ data.data(), data.size() },
                                                     position, &statistics);
    }
    const auto elapsed = stopwatch.elapsed();

    std::printf("  positions tested: %" PRIu64 " (%.2f Mpos/s)\n\n",
                statistics.positionsTested,
                static_cast<double>(positions) / elapsed / 1e6);

    const auto total = statistics.positionsTested;
    printStatRow("Invalid final block", statistics.invalidFinalBlock, total, "500000.1e6");
    printStatRow("Invalid compression type", statistics.invalidCompressionType, total, "375000.0e6");
    printStatRow("Invalid Precode size", statistics.invalidPrecodeSize, total, "7812.47e6");
    printStatRow("Invalid Precode code", statistics.invalidPrecodeCode, total, "77451.6e6");
    printStatRow("Non-optimal Precode code", statistics.nonOptimalPrecodeCode, total, "39256.9e6");
    printStatRow("Invalid Precode-encoded data", statistics.invalidPrecodeEncodedData, total,
                 "386.66e6");
    printStatRow("Invalid distance code", statistics.invalidDistanceCode, total, "14.291e6");
    printStatRow("Non-optimal distance code", statistics.nonOptimalDistanceCode, total, "77.126e6");
    printStatRow("Invalid literal code", statistics.invalidLiteralCode, total, "340.6e3");
    printStatRow("Non-optimal literal code", statistics.nonOptimalLiteralCode, total, "517.2e3");
    printStatRow("Valid Deflate headers", statistics.validHeaders, total, "202");

    std::printf("\n  Expected shape (paper Table 1): each stage filters a sharply smaller\n"
                "  absolute count; the small-sample tail rows are noisy by nature.\n");
    return 0;
}
