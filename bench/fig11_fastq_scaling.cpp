/**
 * Figure 11 reproduction: decompression scaling on a FASTQ file (synthetic;
 * see DESIGN.md). Paper: rapidgzip without an index stops scaling around 48
 * cores at 4.9 GB/s; pugz (sync) peaks at 1.4 GB/s at 16 cores; with an index
 * rapidgzip scales to 128 cores.
 */

#include <memory>

#include "core/ParallelGzipReader.hpp"
#include "gzip/ZlibCompressor.hpp"
#include "io/MemoryFileReader.hpp"
#include "workloads/DataGenerators.hpp"

#include "ScalingHarness.hpp"

using namespace rapidgzip;

int
main()
{
    const auto data = workloads::fastqData(bench::scaledSize(48 * MiB), 0xF1B);
    const auto compressed = compressPigzLike({ data.data(), data.size() }, 6, 512 * 1024);

    auto index = std::make_shared<GzipIndex>();
    {
        ParallelGzipReader builder(std::make_unique<MemoryFileReader>(compressed),
                                   bench::scalingConfig(4));
        *index = builder.exportIndex();
    }

    bench::runScaling(
        "Figure 11: parallel decompression of a FASTQ file",
        data, compressed,
        {
            bench::rapidgzipIndexTool(index),
            bench::rapidgzipNoIndexTool(),
            bench::pugzLikeTool(true),
            bench::sequentialGzipTool(),
            bench::zlibTool(),
        });

    std::printf("\n  Expected shape (paper Fig. 11): like Fig. 10, with pugz working on\n"
                "  this ASCII-only data but trailing rapidgzip at every thread count.\n");
    return 0;
}
