#pragma once

/**
 * Shared result types for the hot-path component benchmark. Both the legacy
 * (bench/legacy, pre-PR) and current measurement translation units implement
 * the same small measurement contract against these types; the orchestrator
 * (components_hotpath.cpp) compares them for bit-exact equivalence and
 * reports before/after throughput. Measurement loops live in their OWN
 * translation units because co-compiling two implementations of the same
 * hot loop measurably changes the compiler's inlining and layout decisions
 * for both.
 */

#include <cstddef>
#include <cstdint>
#include <vector>

namespace rapidgzip::bench {

struct DecodeResult
{
    /** Marked symbols flattened to little-endian byte pairs, then the plain
     * segments — comparable across implementations. */
    std::vector<std::uint8_t> flattened;
    std::size_t totalSize{ 0 };
    bool ok{ false };
};

struct FilterCounts
{
    std::uint64_t accepted{ 0 };
    std::uint64_t invalidPrecodeCode{ 0 };
    std::uint64_t nonOptimalPrecodeCode{ 0 };
    std::uint64_t validHeaders{ 0 };

    [[nodiscard]] bool
    operator==( const FilterCounts& other ) const noexcept
    {
        return accepted == other.accepted
               && invalidPrecodeCode == other.invalidPrecodeCode
               && nonOptimalPrecodeCode == other.nonOptimalPrecodeCode
               && validHeaders == other.validHeaders;
    }
};

}  // namespace rapidgzip::bench
