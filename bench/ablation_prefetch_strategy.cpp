/**
 * Ablation: prefetching strategy and cache behaviour (paper §3.2).
 *
 * Compares FetchNextFixed, FetchNextAdaptive (the paper's default), and
 * FetchNextMultiStream on (a) a plain sequential full read and (b) two
 * interleaved sequential readers over the same file — the concurrent-access
 * pattern of a ratarmount-style FUSE mount. Reports bandwidth and prefetch
 * cache efficiency.
 */

#include <cstdio>
#include <memory>

#include "core/ParallelGzipReader.hpp"
#include "gzip/ZlibCompressor.hpp"
#include "io/MemoryFileReader.hpp"
#include "workloads/DataGenerators.hpp"

#include "BenchmarkHelpers.hpp"

using namespace rapidgzip;

namespace {

const char*
name(ChunkFetcherConfiguration::Strategy strategy)
{
    switch (strategy) {
    case ChunkFetcherConfiguration::Strategy::FIXED:        return "FetchNextFixed";
    case ChunkFetcherConfiguration::Strategy::ADAPTIVE:     return "FetchNextAdaptive";
    case ChunkFetcherConfiguration::Strategy::MULTI_STREAM: return "FetchNextMultiStream";
    }
    return "?";
}

ChunkFetcherConfiguration
config(ChunkFetcherConfiguration::Strategy strategy)
{
    ChunkFetcherConfiguration result;
    result.parallelism = 4;
    result.chunkSizeBytes = 512 * KiB;
    result.strategy = strategy;
    return result;
}

}  // namespace

int
main()
{
    bench::printHeader("Ablation: prefetch strategy (paper 3.2)");

    const auto data = workloads::base64Data(bench::scaledSize(32 * MiB), 0xAB6);
    const auto compressed = compressPigzLike({ data.data(), data.size() }, 6, 256 * 1024);
    const auto repeats = bench::benchRepeats(3);

    const ChunkFetcherConfiguration::Strategy strategies[] = {
        ChunkFetcherConfiguration::Strategy::FIXED,
        ChunkFetcherConfiguration::Strategy::ADAPTIVE,
        ChunkFetcherConfiguration::Strategy::MULTI_STREAM,
    };

    std::printf("  --- sequential full read ---\n");
    for (const auto strategy : strategies) {
        std::size_t hits = 0;
        std::size_t dispatched = 0;
        std::size_t onDemand = 0;
        const auto bandwidth = bench::measureBandwidth(data.size(), repeats, [&]() {
            ParallelGzipReader reader(std::make_unique<MemoryFileReader>(compressed),
                                      config(strategy));
            (void)reader.decompressAll();
            hits = reader.fetcherStatistics().prefetchHits;
            dispatched = reader.fetcherStatistics().prefetchDispatched;
            onDemand = reader.fetcherStatistics().onDemandDecodes;
        });
        std::printf("  %-22s %10.2f ± %-8.2f MB/s   prefetch hits %zu/%zu, on-demand %zu\n",
                    name(strategy), bandwidth.mean / 1e6, bandwidth.stddev / 1e6,
                    hits, dispatched, onDemand);
        std::fflush(stdout);
    }

    std::printf("\n  --- two interleaved sequential readers (ratarmount pattern) ---\n");
    for (const auto strategy : strategies) {
        std::size_t hits = 0;
        std::size_t dispatched = 0;
        std::size_t onDemand = 0;
        const auto bandwidth = bench::measureBandwidth(data.size(), repeats, [&]() {
            ParallelGzipReader reader(std::make_unique<MemoryFileReader>(compressed),
                                      config(strategy));
            reader.setVerifyChecksums(false);  // interleaved access breaks the CRC chain anyway

            /* Alternate 256 KiB reads from the halves of the stream. */
            std::vector<std::uint8_t> buffer(256 * KiB);
            std::size_t positionA = 0;
            std::size_t positionB = data.size() / 2;
            bool moreA = true;
            bool moreB = true;
            while (moreA || moreB) {
                if (moreA) {
                    reader.seek(positionA);
                    const auto n = reader.read(buffer.data(),
                                               std::min(buffer.size(), data.size() / 2 - positionA));
                    positionA += n;
                    moreA = (n > 0) && (positionA < data.size() / 2);
                }
                if (moreB) {
                    reader.seek(positionB);
                    const auto n = reader.read(buffer.data(),
                                               std::min(buffer.size(), data.size() - positionB));
                    positionB += n;
                    moreB = (n > 0) && (positionB < data.size());
                }
            }
            hits = reader.fetcherStatistics().prefetchHits;
            dispatched = reader.fetcherStatistics().prefetchDispatched;
            onDemand = reader.fetcherStatistics().onDemandDecodes;
        });
        std::printf("  %-22s %10.2f ± %-8.2f MB/s   prefetch hits %zu/%zu, on-demand %zu\n",
                    name(strategy), bandwidth.mean / 1e6, bandwidth.stddev / 1e6,
                    hits, dispatched, onDemand);
        std::fflush(stdout);
    }

    std::printf("\n  Expected shape: all strategies tie on sequential reads; the\n"
                "  multi-stream strategy wins prefetch hits on interleaved access.\n");
    return 0;
}
