/**
 * Ablation: prefetching strategy and cache behaviour (paper §3.2).
 *
 * Compares FetchNextFixed, FetchNextAdaptive (the paper's default), and
 * FetchNextMultiStream on (a) a plain sequential full read and (b) two
 * interleaved sequential readers over the same file — the concurrent-access
 * pattern of a ratarmount-style FUSE mount. Reports bandwidth and prefetch
 * cache efficiency.
 */

#include <cstdio>
#include <memory>

#include "core/ParallelGzipReader.hpp"
#include "gzip/ZlibCompressor.hpp"
#include "io/MemoryFileReader.hpp"
#include "workloads/DataGenerators.hpp"

#include "BenchmarkHelpers.hpp"

using namespace rapidgzip;

namespace {

const char*
name(ChunkFetcherConfiguration::Strategy strategy)
{
    switch (strategy) {
    case ChunkFetcherConfiguration::Strategy::FIXED:        return "FetchNextFixed";
    case ChunkFetcherConfiguration::Strategy::ADAPTIVE:     return "FetchNextAdaptive";
    case ChunkFetcherConfiguration::Strategy::MULTI_STREAM: return "FetchNextMultiStream";
    }
    return "?";
}

ChunkFetcherConfiguration
config(ChunkFetcherConfiguration::Strategy strategy)
{
    ChunkFetcherConfiguration result;
    result.parallelism = 4;
    result.chunkSizeBytes = 512 * KiB;
    result.strategy = strategy;
    return result;
}

/* Consumed / issued: how much speculative work a strategy turns into served
 * accesses. "wasted" counts evicted-unconsumed decodes plus the decodes that
 * never found a consumer by the end of the run (dispatched - consumed). */
void
printRow(const char* strategyName, const bench::Measurement& bandwidth, const FetcherStatistics& stats)
{
    const auto wasted = stats.prefetchDispatched - stats.prefetchHits;
    const auto efficiency = stats.prefetchDispatched > 0
                            ? 100.0 * static_cast<double>(stats.prefetchHits)
                              / static_cast<double>(stats.prefetchDispatched)
                            : 0.0;
    std::printf("  %-22s %10.2f ± %-8.2f MB/s   issued %zu, consumed %zu, wasted %zu"
                " (%.1f%% efficient), on-demand %zu\n",
                strategyName, bandwidth.mean / 1e6, bandwidth.stddev / 1e6,
                stats.prefetchDispatched, stats.prefetchHits, wasted, efficiency,
                stats.onDemandDecodes);
    std::fflush(stdout);
}

}  // namespace

int
main()
{
    bench::printHeader("Ablation: prefetch strategy (paper 3.2)");

    const auto data = workloads::base64Data(bench::scaledSize(32 * MiB), 0xAB6);
    const auto compressed = compressPigzLike({ data.data(), data.size() }, 6, 256 * 1024);
    const auto repeats = bench::benchRepeats(3);

    const ChunkFetcherConfiguration::Strategy strategies[] = {
        ChunkFetcherConfiguration::Strategy::FIXED,
        ChunkFetcherConfiguration::Strategy::ADAPTIVE,
        ChunkFetcherConfiguration::Strategy::MULTI_STREAM,
    };

    std::printf("  --- sequential full read ---\n");
    for (const auto strategy : strategies) {
        FetcherStatistics stats;
        const auto bandwidth = bench::measureBandwidth(data.size(), repeats, [&]() {
            ParallelGzipReader reader(std::make_unique<MemoryFileReader>(compressed),
                                      config(strategy));
            (void)reader.decompressAll();
            stats = reader.fetcherStatistics();
        });
        printRow(name(strategy), bandwidth, stats);
    }

    std::printf("\n  --- two interleaved sequential readers (ratarmount pattern) ---\n");
    for (const auto strategy : strategies) {
        FetcherStatistics stats;
        const auto bandwidth = bench::measureBandwidth(data.size(), repeats, [&]() {
            ParallelGzipReader reader(std::make_unique<MemoryFileReader>(compressed),
                                      config(strategy));
            reader.setVerifyChecksums(false);  // interleaved access breaks the CRC chain anyway

            /* Alternate 256 KiB reads from the halves of the stream. */
            std::vector<std::uint8_t> buffer(256 * KiB);
            std::size_t positionA = 0;
            std::size_t positionB = data.size() / 2;
            bool moreA = true;
            bool moreB = true;
            while (moreA || moreB) {
                if (moreA) {
                    reader.seek(positionA);
                    const auto n = reader.read(buffer.data(),
                                               std::min(buffer.size(), data.size() / 2 - positionA));
                    positionA += n;
                    moreA = (n > 0) && (positionA < data.size() / 2);
                }
                if (moreB) {
                    reader.seek(positionB);
                    const auto n = reader.read(buffer.data(),
                                               std::min(buffer.size(), data.size() - positionB));
                    positionB += n;
                    moreB = (n > 0) && (positionB < data.size());
                }
            }
            stats = reader.fetcherStatistics();
        });
        printRow(name(strategy), bandwidth, stats);
    }

    std::printf("\n  Expected shape: all strategies tie on sequential reads; the\n"
                "  multi-stream strategy wins prefetch efficiency on interleaved access\n"
                "  (FIXED keeps issuing down both halves' dead ends, so its wasted\n"
                "  column prices the speculation the wall clock alone hides).\n");
    return 0;
}
