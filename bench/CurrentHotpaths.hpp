#pragma once

/**
 * Measurement interface over the CURRENT hot paths — the mirror of
 * LegacyBaseline.hpp, in its own translation unit for the same reason (see
 * HotpathContracts.hpp). Keep this header free of hot-path includes.
 */

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/Util.hpp"

#include "HotpathContracts.hpp"

namespace currentbench {

/** Best-of-@p repeats bandwidth (bytes/s) of the amortized
 * ensureBits()/readUnsafe() loop at @p bits bits per read. */
[[nodiscard]] double
measureBitReaderBandwidth( rapidgzip::BufferView data, unsigned bits, std::size_t repeats );

/** One-shot current (fast-path) decode for the equivalence check. */
[[nodiscard]] rapidgzip::bench::DecodeResult
decodeOnce( rapidgzip::BufferView stream, std::size_t fromBit, bool windowKnown );

/** Best-of-@p repeats decode bandwidth (bytes/s) of the current decoder
 * with pooled buffers. Returns 0 if a run decodes differently than
 * @p expectBytes. */
[[nodiscard]] double
measureDecodeBandwidth( rapidgzip::BufferView stream, std::size_t fromBit, bool windowKnown,
                        std::size_t expectBytes, std::size_t repeats );

/** Run the packed cascade once over @p positions (equivalence). */
[[nodiscard]] rapidgzip::bench::FilterCounts
runFilter( rapidgzip::BufferView stream, const std::vector<std::size_t>& positions );

/** True iff the packed filter and the in-tree scalar variant agree on every
 * position (the scalar variant is the bit-exact port of the pre-PR stage
 * kept for the randomized equivalence tests). */
[[nodiscard]] bool
scalarMatchesPacked( rapidgzip::BufferView stream, const std::vector<std::size_t>& positions );

/** Best-of-@p repeats rejection rate (positions/s) of the packed cascade. */
[[nodiscard]] double
measureRejectionRate( rapidgzip::BufferView stream,
                      const std::vector<std::size_t>& positions, std::size_t repeats );

/** Positions passing the 8-bit prefix filters — the candidates that reach
 * the precode rejection stage. */
[[nodiscard]] std::vector<std::size_t>
collectPrecodeStagePositions( rapidgzip::BufferView stream );

/** Positions surviving stages 1-4 of the cascade — the candidates whose cost
 * is dominated by the stage-5 RLE parse this PR caches. */
[[nodiscard]] std::vector<std::size_t>
collectStage5Positions( rapidgzip::BufferView stream );

/** One-shot dispatched simd::replaceMarkers (equivalence check). @p window
 * must be a full 32 KiB last-window. */
[[nodiscard]] std::vector<std::uint8_t>
replaceMarkersOnce( const std::vector<std::uint16_t>& symbols,
                    const std::vector<std::uint8_t>& window );

/** Best-of-@p repeats bandwidth (output bytes/s) of the dispatched
 * simd::replaceMarkers at the active level. */
[[nodiscard]] double
measureReplaceMarkersBandwidth( const std::vector<std::uint16_t>& symbols,
                                const std::vector<std::uint8_t>& window,
                                std::size_t repeats );

/** One-shot dispatched simd::crc32 (equivalence check). */
[[nodiscard]] std::uint32_t
crc32Once( rapidgzip::BufferView data );

/** Best-of-@p repeats bandwidth (bytes/s) of the dispatched simd::crc32 at
 * the active level. */
[[nodiscard]] double
measureCrc32Bandwidth( rapidgzip::BufferView data, std::size_t repeats );

/** Best-of-@p repeats end-to-end decompressMember bandwidth (bytes/s) over
 * the gzip bytes in @p gz; @p referenceSymbolLoop toggles the in-tree
 * reference decode loop (construction and buffers stay current). Returns 0
 * on a size mismatch. */
[[nodiscard]] double
measurePipelineBandwidth( const std::vector<std::uint8_t>& gz, std::size_t rawSize,
                          bool referenceSymbolLoop, std::size_t parallelism,
                          std::size_t repeats );

}  // namespace currentbench
