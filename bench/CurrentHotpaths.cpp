/**
 * Current hot-path measurements — own translation unit, see
 * HotpathContracts.hpp.
 */

#include "CurrentHotpaths.hpp"

#include <algorithm>

#include "bits/BitReader.hpp"
#include "blockfinder/DynamicBlockFinderRapid.hpp"
#include "core/GzipChunkFetcher.hpp"
#include "deflate/DecodedData.hpp"
#include "deflate/DeflateDecoder.hpp"
#include "gzip/GzipHeader.hpp"
#include "io/MemoryFileReader.hpp"
#include "simd/Crc32.hpp"
#include "simd/ReplaceMarkers.hpp"

#include "BenchmarkHelpers.hpp"

namespace currentbench {

using namespace rapidgzip;

double
measureBitReaderBandwidth( BufferView data, unsigned bits, std::size_t repeats )
{
    volatile std::uint64_t sink = 0;
    const auto measurement = bench::measureBandwidth( data.size(), repeats, [&] () {
        BitReader reader( data.data(), data.size() );
        std::uint64_t sum = 0;
        /* One refill check per 4 reads — the decoder's discipline. */
        while ( reader.ensureBits( 4 * bits ) ) {
            sum += reader.readUnsafe( bits );
            sum += reader.readUnsafe( bits );
            sum += reader.readUnsafe( bits );
            sum += reader.readUnsafe( bits );
        }
        sink = sink + sum;
    } );
    return measurement.best;
}

namespace {

[[nodiscard]] deflate::DecodedData
decodeImpl( BufferView stream, std::size_t fromBit, bool windowKnown, bool* ok )
{
    BitReader reader( stream.data(), stream.size() );
    reader.seek( fromBit );
    deflate::Decoder decoder;
    if ( windowKnown ) {
        decoder.setInitialWindow( {} );
    }
    auto data = deflate::DecodedDataPool::acquire();
    data.reset();
    const auto result = decoder.decode( reader, data );
    *ok = result.error == Error::NONE;
    return data;
}

}  // namespace

rapidgzip::bench::DecodeResult
decodeOnce( BufferView stream, std::size_t fromBit, bool windowKnown )
{
    rapidgzip::bench::DecodeResult result;
    auto data = decodeImpl( stream, fromBit, windowKnown, &result.ok );
    result.totalSize = data.totalSize();
    result.flattened.reserve( result.totalSize );
    for ( const auto symbol : data.marked ) {
        result.flattened.push_back( static_cast<std::uint8_t>( symbol & 0xFFU ) );
        result.flattened.push_back( static_cast<std::uint8_t>( symbol >> 8U ) );
    }
    for ( const auto& segment : data.plain ) {
        result.flattened.insert( result.flattened.end(),
                                 segment.data.begin(), segment.data.end() );
    }
    deflate::DecodedDataPool::release( std::move( data ) );
    return result;
}

double
measureDecodeBandwidth( BufferView stream, std::size_t fromBit, bool windowKnown,
                        std::size_t expectBytes, std::size_t repeats )
{
    bool allOk = true;
    const auto measurement = bench::measureBandwidth( expectBytes, repeats, [&] () {
        bool ok = false;
        auto data = decodeImpl( stream, fromBit, windowKnown, &ok );
        allOk = allOk && ok && ( data.totalSize() == expectBytes );
        deflate::DecodedDataPool::release( std::move( data ) );
    } );
    return allOk ? measurement.best : 0.0;
}

rapidgzip::bench::FilterCounts
runFilter( BufferView stream, const std::vector<std::size_t>& positions )
{
    blockfinder::FilterStatistics statistics;
    rapidgzip::bench::FilterCounts counts;
    BitReader reader( stream.data(), stream.size() );
    for ( const auto position : positions ) {
        reader.seekAfterPeek( position );
        counts.accepted +=
            blockfinder::DynamicBlockFinderRapid::testHeader( reader, &statistics ) ? 1 : 0;
    }
    counts.invalidPrecodeCode = statistics.invalidPrecodeCode;
    counts.nonOptimalPrecodeCode = statistics.nonOptimalPrecodeCode;
    counts.validHeaders = statistics.validHeaders;
    return counts;
}

bool
scalarMatchesPacked( BufferView stream, const std::vector<std::size_t>& positions )
{
    BitReader reader( stream.data(), stream.size() );
    for ( const auto position : positions ) {
        reader.seekAfterPeek( position );
        const auto packed = blockfinder::DynamicBlockFinderRapid::testHeader( reader, nullptr );
        const auto scalar = blockfinder::DynamicBlockFinderRapid::testCandidateScalar(
            stream, position, nullptr );
        if ( packed != scalar ) {
            return false;
        }
    }
    return true;
}

double
measureRejectionRate( BufferView stream,
                      const std::vector<std::size_t>& positions, std::size_t repeats )
{
    volatile std::uint64_t sink = 0;
    const auto measurement = bench::measureBandwidth( positions.size(), repeats, [&] () {
        BitReader reader( stream.data(), stream.size() );
        std::uint64_t accepted = 0;
        for ( const auto position : positions ) {
            reader.seekAfterPeek( position );
            accepted += blockfinder::DynamicBlockFinderRapid::testHeader( reader, nullptr )
                        ? 1 : 0;
        }
        sink = sink + accepted;
    } );
    return measurement.best;
}

std::vector<std::size_t>
collectStage5Positions( BufferView stream )
{
    /* A position reached stage 5 iff the cascade accepted it or rejected it
     * in stage 5 or later — visible through which statistics counter its
     * testCandidate call incremented. */
    std::vector<std::size_t> positions;
    const auto totalBits = stream.size() * 8;
    for ( std::size_t position = 0;
          position + deflate::MIN_DYNAMIC_HEADER_BITS <= totalBits; ++position ) {
        blockfinder::FilterStatistics statistics;
        const auto accepted =
            blockfinder::DynamicBlockFinderRapid::testCandidate( stream, position, &statistics );
        const auto rejectedAtOrAfterStage5 = statistics.invalidPrecodeEncodedData
                                             + statistics.invalidDistanceCode
                                             + statistics.nonOptimalDistanceCode
                                             + statistics.invalidLiteralCode
                                             + statistics.nonOptimalLiteralCode;
        if ( accepted || ( rejectedAtOrAfterStage5 > 0 ) ) {
            positions.push_back( position );
        }
    }
    return positions;
}

std::vector<std::uint8_t>
replaceMarkersOnce( const std::vector<std::uint16_t>& symbols,
                    const std::vector<std::uint8_t>& window )
{
    std::vector<std::uint8_t> output( symbols.size() );
    const auto* const recent = window.data() + ( window.size() - deflate::WINDOW_SIZE );
    simd::replaceMarkers( symbols.data(), symbols.size(), recent, output.data() );
    return output;
}

double
measureReplaceMarkersBandwidth( const std::vector<std::uint16_t>& symbols,
                                const std::vector<std::uint8_t>& window,
                                std::size_t repeats )
{
    std::vector<std::uint8_t> output( symbols.size() );
    const auto* const recent = window.data() + ( window.size() - deflate::WINDOW_SIZE );
    volatile std::uint8_t sink = 0;
    const auto measurement = bench::measureBandwidth( symbols.size(), repeats, [&] () {
        simd::replaceMarkers( symbols.data(), symbols.size(), recent, output.data() );
        sink = sink + output[output.size() / 2];
    } );
    return measurement.best;
}

std::uint32_t
crc32Once( BufferView data )
{
    return simd::crc32( 0, data.data(), data.size() );
}

double
measureCrc32Bandwidth( BufferView data, std::size_t repeats )
{
    volatile std::uint32_t sink = 0;
    const auto measurement = bench::measureBandwidth( data.size(), repeats, [&] () {
        sink = sink + simd::crc32( 0, data.data(), data.size() );
    } );
    return measurement.best;
}

std::vector<std::size_t>
collectPrecodeStagePositions( BufferView stream )
{
    std::vector<std::size_t> positions;
    BitReader reader( stream.data(), stream.size() );
    const auto totalBits = stream.size() * 8;
    for ( std::size_t position = 0;
          position + deflate::MIN_DYNAMIC_HEADER_BITS <= totalBits; ++position ) {
        reader.seekAfterPeek( position );
        const auto prefix = reader.peek( 8 );
        if ( ( ( prefix & 0b1U ) == 0 )
             && ( ( ( prefix >> 1U ) & 0b11U ) == deflate::BLOCK_TYPE_DYNAMIC )
             && ( ( ( prefix >> 3U ) & 0b11111U ) <= 29 ) ) {
            positions.push_back( position );
        }
    }
    return positions;
}

double
measurePipelineBandwidth( const std::vector<std::uint8_t>& gz, std::size_t rawSize,
                          bool referenceSymbolLoop, std::size_t parallelism,
                          std::size_t repeats )
{
    const MemoryFileReader file( gz );
    const auto deflateStart = parseGzipHeader( { gz.data(), gz.size() } );
    bool allOk = true;
    deflate::Decoder::globalReferenceHuffmanDecoding().store( referenceSymbolLoop );
    const auto measurement = bench::measureBandwidth( rawSize, repeats, [&] () {
        const auto member = GzipChunkFetcher::decompressMember(
            file, deflateStart, parallelism, 1 * MiB );
        allOk = allOk && ( member.uncompressedSize == rawSize );
    } );
    deflate::Decoder::globalReferenceHuffmanDecoding().store( false );
    return allOk ? measurement.best : 0.0;
}

}  // namespace currentbench
