/**
 * Table 3 reproduction: rapidgzip decompression bandwidth for files produced
 * by different compressors and levels. Paper highlights: bgzip -0 (stored
 * blocks) decompresses fastest (10.6 GB/s); igzip -0 (one giant block)
 * defeats parallelization entirely (0.16 GB/s ≈ single-core); gzip- and
 * pigz-style output land in between (3.7-6.5 GB/s), with pigz slower than
 * gzip because of its smaller Deflate blocks.
 *
 * Compressors are emulated with this library's writers (see DESIGN.md):
 * BgzfWriter for bgzip, zlib for gzip, Z_FULL_FLUSH intervals for pigz, and
 * a single fixed-Huffman block for igzip -0's no-boundaries pathology.
 */

#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/ParallelGzipReader.hpp"
#include "formats/Formats.hpp"
#include "gzip/BgzfWriter.hpp"
#include "gzip/DeflateBlockWriter.hpp"
#include "gzip/GzipWriter.hpp"
#include "gzip/ZlibCompressor.hpp"
#include "io/MemoryFileReader.hpp"
#include "workloads/DataGenerators.hpp"

#if defined( RAPIDGZIP_HAVE_VENDOR_ZSTD )
#include "formats/ZstdWriter.hpp"
#endif
#if defined( RAPIDGZIP_HAVE_VENDOR_BZIP2 )
#include "formats/Bzip2Writer.hpp"
#endif
#include "formats/Lz4Writer.hpp"

#include "BenchmarkHelpers.hpp"

using namespace rapidgzip;

namespace {

struct CompressorVariant
{
    std::string name;
    std::function<std::vector<std::uint8_t>( BufferView )> compress;
    std::string paperBandwidth;
};

}  // namespace

int
main()
{
    bench::printHeader("Table 3: rapidgzip bandwidth by compressor and level (P=4)");

    const auto data = workloads::silesiaLikeData(bench::scaledSize(32 * MiB), 0x7AB1E6);
    const auto repeats = bench::benchRepeats(3);
    constexpr std::size_t THREADS = 4;

    const std::vector<CompressorVariant> variants = {
        { "bgzip -l 0 (stored)", [](BufferView view) { return writeBgzf(view, 0); },
          "10.6 GB/s" },
        { "bgzip -l 3", [](BufferView view) { return writeBgzf(view, 3); }, "5.90 GB/s" },
        { "bgzip -l 6", [](BufferView view) { return writeBgzf(view, 6); }, "5.67 GB/s" },
        { "bgzip -l 9", [](BufferView view) { return writeBgzf(view, 9); }, "5.64 GB/s" },
        { "gzip -1 (zlib)", [](BufferView view) { return compressGzipLike(view, 1); },
          "6.05 GB/s" },
        { "gzip -3 (zlib)", [](BufferView view) { return compressGzipLike(view, 3); },
          "5.55 GB/s" },
        { "gzip -6 (zlib)", [](BufferView view) { return compressGzipLike(view, 6); },
          "5.17 GB/s" },
        { "gzip -9 (zlib)", [](BufferView view) { return compressGzipLike(view, 9); },
          "5.03 GB/s" },
        { "igzip -0 (single block)",
          [](BufferView view) { return writeSingleBlockGzip(view); }, "0.159 GB/s" },
        { "pigz -1 (full flush)",
          [](BufferView view) { return compressPigzLike(view, 1, 128 * 1024); }, "3.82 GB/s" },
        { "pigz -6 (full flush)",
          [](BufferView view) { return compressPigzLike(view, 6, 128 * 1024); }, "3.76 GB/s" },
        { "pigz -9 (full flush)",
          [](BufferView view) { return compressPigzLike(view, 9, 128 * 1024); }, "3.73 GB/s" },
    };

    std::printf("  %-36s %-10s %s\n", "compressor", "ratio", "bandwidth");
    for (const auto& variant : variants) {
        const auto compressed = variant.compress({ data.data(), data.size() });
        const auto ratio = static_cast<double>(data.size())
                           / static_cast<double>(compressed.size());

        const auto bandwidth = bench::measureBandwidth(data.size(), repeats, [&]() {
            ChunkFetcherConfiguration config;
            config.parallelism = THREADS;
            config.chunkSizeBytes = 1 * MiB;
            ParallelGzipReader reader(std::make_unique<MemoryFileReader>(compressed), config);
            (void)reader.decompressAll();
        });

        std::printf("  %-36s %-10.2f %10.2f ± %-8.2f MB/s   [paper: %s]\n",
                    variant.name.c_str(), ratio,
                    bandwidth.mean / 1e6, bandwidth.stddev / 1e6,
                    variant.paperBandwidth.c_str());
        std::fflush(stdout);
    }

    /* Restored multi-backend rows: non-gzip compressors decoded through
     * the format-dispatch layer (formats::makeDecompressor) at the same
     * P=4, so the gzip rows above have their cross-format context. */
    std::vector<CompressorVariant> backendVariants;
    backendVariants.push_back(
        { "lz4 (256 KiB indep blocks)",
          [](BufferView view) {
              return formats::writeLz4(view, formats::Lz4Writer::BlockMaxSize::KIB256);
          },
          "3.56 GB/s (P=1)" });
#if defined( RAPIDGZIP_HAVE_VENDOR_ZSTD )
    backendVariants.push_back(
        { "zstd -3 (seekable, 1 MiB frames)",
          [](BufferView view) { return formats::writeZstdSeekable(view, 3, 1 * MiB); },
          "1.05 GB/s (P=1)" });
    backendVariants.push_back(
        { "zstd -19 (seekable, 1 MiB frames)",
          [](BufferView view) { return formats::writeZstdSeekable(view, 19, 1 * MiB); },
          "1.4 GB/s (P=1)" });
#endif
#if defined( RAPIDGZIP_HAVE_VENDOR_BZIP2 )
    backendVariants.push_back(
        { "bzip2 -1 (100 kB blocks)",
          [](BufferView view) { return formats::writeBzip2(view, 1); }, "0.048 GB/s (P=1)" });
    backendVariants.push_back(
        { "bzip2 -9 (900 kB blocks)",
          [](BufferView view) { return formats::writeBzip2(view, 9); }, "0.048 GB/s (P=1)" });
#endif

    std::printf("\n  Multi-backend rows (format-dispatch layer, P=%zu):\n", THREADS);
    for (const auto& variant : backendVariants) {
        const auto compressed = variant.compress({ data.data(), data.size() });
        const auto ratio = static_cast<double>(data.size())
                           / static_cast<double>(compressed.size());

        const auto bandwidth = bench::measureBandwidth(data.size(), repeats, [&]() {
            ChunkFetcherConfiguration config;
            config.parallelism = THREADS;
            config.chunkSizeBytes = 1 * MiB;
            auto decompressor = formats::makeDecompressor(
                std::make_unique<MemoryFileReader>(compressed), config);
            (void)decompressor->decompress({});
        });

        std::printf("  %-36s %-10.2f %10.2f ± %-8.2f MB/s   [paper: %s]\n",
                    variant.name.c_str(), ratio,
                    bandwidth.mean / 1e6, bandwidth.stddev / 1e6,
                    variant.paperBandwidth.c_str());
        std::fflush(stdout);
    }

    std::printf("\n  Expected shape (paper Table 3): stored-block BGZF fastest;\n"
                "  the single-block igzip -0 emulation collapses to single-core speed;\n"
                "  all other compressors decompress at comparable parallel speed.\n"
                "  Across formats: lz4 decompresses fastest per core, zstd next,\n"
                "  bzip2 slowest but with the best block-level parallelism story.\n");
    return 0;
}
