/**
 * Table 2 reproduction: bandwidths of the individual pipeline components —
 * the four Dynamic block finder (DBF) implementations, the Non-Compressed
 * block finder (NBF), marker replacement, writing, and newline counting.
 *
 * Paper values (MB/s): DBF zlib 0.12, DBF custom deflate 3.4, pugz finder
 * 11.3, DBF skip-LUT 18.3, DBF rapidgzip 43.1, NBF 301.8, marker
 * replacement 1254, write to /dev/shm 3799, count newlines 9550.
 * (The pugz finder is approximated by the skip-LUT variant; see DESIGN.md.)
 */

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <numeric>
#include <string>
#include <system_error>

#include "blockfinder/DynamicBlockFinderNaive.hpp"
#include "blockfinder/DynamicBlockFinderRapid.hpp"
#include "blockfinder/DynamicBlockFinderSkipLUT.hpp"
#include "blockfinder/DynamicBlockFinderZlib.hpp"
#include "blockfinder/NonCompressedBlockFinder.hpp"
#include "deflate/DecodedData.hpp"
#include "simd/Dispatch.hpp"
#include "workloads/DataGenerators.hpp"

#include "BenchmarkHelpers.hpp"

using namespace rapidgzip;

namespace {

template<typename Finder>
bench::Measurement
measureFinder(const std::vector<std::uint8_t>& data, std::size_t repeats,
              Finder prototype = Finder{})
{
    /* The volatile sink keeps the compiler from proving the scan loop free
     * of side effects and deleting it wholesale (NBF is simple enough to be
     * fully eliminated otherwise, reporting absurd TB/s). */
    volatile std::size_t sink = 0;
    return bench::measureBandwidth(data.size(), repeats, [&]() {
        Finder finder = prototype;
        std::size_t fromBit = 0;
        std::size_t checksum = 0;
        while (true) {
            const auto offset = finder.find({ data.data(), data.size() }, fromBit);
            if (offset == blockfinder::NOT_FOUND) {
                break;
            }
            checksum += offset;
            fromBit = offset + 1;
        }
        sink = sink + checksum;
    });
}

}  // namespace

int
main()
{
    bench::printHeader("Table 2: component bandwidths");
    /* All rows measure SHIPPED defaults: the marker-replacement row goes
     * through the dispatched simd kernel and the naive-DBF row builds the
     * decoder's multi-cached LUTs. */
    std::printf("  simd dispatch: %s\n\n", simd::toString(simd::activeLevel()));

    const auto repeats = bench::benchRepeats(3);

    /* Random data, like the paper: the finders search it exhaustively. */
    const auto small = workloads::randomData(bench::scaledSize(512 * KiB), 0x7AB1E2);
    const auto medium = workloads::randomData(bench::scaledSize(4 * MiB), 0x7AB1E2);
    const auto large = workloads::randomData(bench::scaledSize(32 * MiB), 0x7AB1E2);

    /* DBF zlib is ~350x slower than DBF rapidgzip: use a small input. */
    {
        const auto tiny = workloads::randomData(bench::scaledSize(96 * KiB), 0x7AB1E2);
        printRow("DBF zlib", measureFinder<blockfinder::DynamicBlockFinderZlib>(tiny, repeats),
                 "0.1234 MB/s");
    }
    /* Explicitly the SHIPPED decoder path (ROADMAP 4d): each candidate parse
     * builds the multi-cached Huffman LUTs the real decoder uses, not the
     * cheap validity-only tables — the row must price what production pays. */
    printRow("DBF custom deflate",
             measureFinder<blockfinder::DynamicBlockFinderNaive>(
                 small, repeats,
                 blockfinder::DynamicBlockFinderNaive(/* buildCachedTables */ true)),
             "3.403 MB/s");
    printRow("DBF skip-LUT (~pugz finder)",
             measureFinder<blockfinder::DynamicBlockFinderSkipLUT>(medium, repeats),
             "18.26 (pugz: 11.3) MB/s");
    printRow("DBF rapidgzip",
             measureFinder<blockfinder::DynamicBlockFinderRapid>(medium, repeats), "43.1 MB/s");
    printRow("NBF", measureFinder<blockfinder::NonCompressedBlockFinder>(large, repeats),
             "301.8 MB/s");

    /* Marker replacement: resolve a 16-bit buffer with ~10% markers. */
    {
        const auto symbolCount = bench::scaledSize(32 * MiB);
        std::vector<std::uint16_t> symbols(symbolCount);
        Xorshift64 random(0x7AB1E3);
        for (auto& symbol : symbols) {
            const auto value = random();
            symbol = (value % 10 == 0)
                     ? static_cast<std::uint16_t>(deflate::MARKER_BASE + (value % 32768))
                     : static_cast<std::uint16_t>(value & 0xFFU);
        }
        const auto window = workloads::randomData(32768, 0x7AB1E4);
        std::vector<std::uint8_t> output(symbols.size());
        printRow("Marker replacement",
                 bench::measureBandwidth(symbols.size(), repeats, [&]() {
                     deflate::replaceMarkers({ symbols.data(), symbols.size() },
                                             { window.data(), window.size() },
                                             output.data());
                 }),
                 "1254 MB/s");
    }

    /* Write to /dev/shm — or, when the container has no (writable)
     * /dev/shm, to the temp directory, so CI never silently benchmarks a
     * failed ofstream. */
    {
        std::string directory = "/dev/shm";
        auto path = directory + "/rapidgzip-bench-write.bin";
        {
            std::ofstream probe(path, std::ios::binary | std::ios::trunc);
            if (!probe.good()) {
                std::error_code errorCode;
                auto fallback = std::filesystem::temp_directory_path(errorCode);
                directory = errorCode ? "." : fallback.string();
                path = directory + "/rapidgzip-bench-write.bin";
            }
        }
        bool writeFailed = false;
        const auto bandwidth = bench::measureBandwidth(large.size(), repeats, [&]() {
            std::ofstream file(path, std::ios::binary | std::ios::trunc);
            file.write(reinterpret_cast<const char*>(large.data()),
                       static_cast<std::streamsize>(large.size()));
            file.flush();
            writeFailed = writeFailed || !file.good();
        });
        std::remove(path.c_str());
        if (writeFailed) {
            std::printf("  %-42s UNAVAILABLE (cannot write to %s)\n",
                        "Write to /dev/shm", directory.c_str());
        } else {
            printRow("Write to " + directory, bandwidth, "3799 MB/s (/dev/shm)");
        }
    }

    /* Count newlines (the post-processing task the paper uses as a ceiling). */
    {
        const auto text = workloads::base64Data(bench::scaledSize(32 * MiB), 0x7AB1E5);
        volatile std::size_t sink = 0;
        printRow("Count newlines",
                 bench::measureBandwidth(text.size(), repeats, [&]() {
                     std::size_t count = 0;
                     const auto* p = text.data();
                     const auto* end = p + text.size();
                     while ((p = static_cast<const std::uint8_t*>(
                                 std::memchr(p, '\n', static_cast<std::size_t>(end - p))))
                            != nullptr) {
                         ++count;
                         ++p;
                     }
                     sink = sink + count;
                 }),
                 "9550 MB/s");
    }

    std::printf("\n  Expected shape (paper Table 2): each row an order of magnitude-ish\n"
                "  above the previous: zlib trial << custom parse << skip-LUT < rapid\n"
                "  << NBF << marker replacement << write << newline counting.\n");
    return 0;
}
