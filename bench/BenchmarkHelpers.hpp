#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <vector>

#include "common/Util.hpp"

namespace rapidgzip::bench {

/**
 * Shared harness utilities. All benchmarks print paper-style rows so the
 * EXPERIMENTS.md comparison can be regenerated with
 *   for b in build/bench/*; do $b; done
 *
 * RAPIDGZIP_BENCH_SCALE (float, default 1.0) scales workload sizes, and
 * RAPIDGZIP_BENCH_REPEATS overrides the repetition count, so the harness can
 * be run quickly on laptops and at full size on servers.
 */

[[nodiscard]] inline double
benchScale()
{
    /* std::atof on an empty or non-numeric string returns 0.0, which the
     * clamp below would silently turn into the minimum scale; treat empty
     * as unset instead. */
    if (const char* scale = std::getenv("RAPIDGZIP_BENCH_SCALE");
        (scale != nullptr) && (scale[0] != '\0')) {
        return std::max(0.01, std::atof(scale));
    }
    return 1.0;
}

[[nodiscard]] inline std::size_t
scaledSize(std::size_t bytes)
{
    return static_cast<std::size_t>(static_cast<double>(bytes) * benchScale());
}

[[nodiscard]] inline std::size_t
benchRepeats(std::size_t defaultRepeats)
{
    if (const char* repeats = std::getenv("RAPIDGZIP_BENCH_REPEATS");
        (repeats != nullptr) && (repeats[0] != '\0')) {
        /* Guard against negative values: casting a negative long long to
         * size_t would wrap to an absurd repeat count. */
        return std::max<long long>(1, std::atoll(repeats));
    }
    return defaultRepeats;
}

struct Measurement
{
    double mean{ 0 };
    double stddev{ 0 };
    /** Fastest sample — the robust estimator for before/after comparisons
     * on time-shared machines: interference only ever slows a run down, so
     * the minimum time (maximum bandwidth) best approximates the true cost. */
    double best{ 0 };
};

/** Run @p work @p repeats times; returns bandwidth statistics in bytes/s. */
[[nodiscard]] inline Measurement
measureBandwidth(std::size_t bytesPerRun, std::size_t repeats,
                 const std::function<void()>& work)
{
    std::vector<double> samples;
    samples.reserve(repeats);
    for (std::size_t i = 0; i < repeats; ++i) {
        Stopwatch stopwatch;
        work();
        const auto elapsed = stopwatch.elapsed();
        samples.push_back(static_cast<double>(bytesPerRun) / std::max(elapsed, 1e-9));
    }
    Measurement result;
    for (const auto sample : samples) {
        result.mean += sample;
        result.best = std::max(result.best, sample);
    }
    result.mean /= static_cast<double>(samples.size());
    for (const auto sample : samples) {
        result.stddev += (sample - result.mean) * (sample - result.mean);
    }
    result.stddev = samples.size() > 1
                    ? std::sqrt(result.stddev / static_cast<double>(samples.size() - 1))
                    : 0.0;
    return result;
}

inline void
printHeader(const std::string& title)
{
    std::printf("\n================================================================\n");
    std::printf("%s\n", title.c_str());
    std::printf("================================================================\n");
}

inline void
printRow(const std::string& label, const Measurement& bandwidth, const std::string& paperValue = "")
{
    std::printf("  %-42s %12.2f ± %-10.2f MB/s", label.c_str(),
                bandwidth.mean / 1e6, bandwidth.stddev / 1e6);
    if (!paperValue.empty()) {
        std::printf("   [paper: %s]", paperValue.c_str());
    }
    std::printf("\n");
    std::fflush(stdout);
}

/** Thread counts swept by the scaling figures (paper sweeps 1..128). */
[[nodiscard]] inline std::vector<std::size_t>
threadSweep()
{
    if (const char* sweep = std::getenv("RAPIDGZIP_BENCH_THREADS"); sweep != nullptr) {
        std::vector<std::size_t> result;
        std::size_t value = 0;
        for (const char* c = sweep; ; ++c) {
            if ((*c >= '0') && (*c <= '9')) {
                value = value * 10 + static_cast<std::size_t>(*c - '0');
            } else {
                if (value > 0) {
                    result.push_back(value);
                }
                value = 0;
                if (*c == '\0') {
                    break;
                }
            }
        }
        if (!result.empty()) {
            return result;
        }
    }
    return { 1, 2, 4, 8, 16 };
}

}  // namespace rapidgzip::bench
