/**
 * Load generator for rapidgzip-serve (paper section: random access at
 * scale). Boots the daemon in-process on an ephemeral loopback port over M
 * gzip archives, then drives N concurrent keep-alive clients issuing
 * Zipf-distributed ranged GETs — the access pattern of a chunk-store or
 * genome-browser front end, where a hot subset of ranges dominates — and
 * byte-verifies EVERY response against the reference data.
 *
 * Emits BENCH_serve.json: requests/s, p50/p99 latency, shared-cache hit
 * rate. Exits non-zero on any non-2xx response or byte mismatch, so the CI
 * smoke run doubles as a correctness gate.
 *
 * Knobs (defaults scale with RAPIDGZIP_BENCH_SCALE):
 *   RAPIDGZIP_SERVE_CLIENTS   concurrent connections   (default 256 x scale)
 *   RAPIDGZIP_SERVE_ARCHIVES  archives under the root  (default 4)
 *   RAPIDGZIP_SERVE_SECONDS   measured wall time       (default ~5 x scale)
 *   RAPIDGZIP_SERVE_THREADS   event-loop shards        (default 1)
 *
 * The run also proves the zero-copy response path: every 206 body must be
 * assembled from borrowed chunk spans, so the range-copy byte counter has
 * to stay at 0 — a non-zero value fails the bench.
 */

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "gzip/ZlibCompressor.hpp"
#include "serve/Server.hpp"
#include "telemetry/Trace.hpp"
#include "workloads/DataGenerators.hpp"

#include "BenchmarkHelpers.hpp"

using namespace rapidgzip;

namespace {

[[nodiscard]] std::size_t
envCount( const char* name, std::size_t fallback )
{
    if ( const char* value = std::getenv( name ); ( value != nullptr ) && ( value[0] != '\0' ) ) {
        return static_cast<std::size_t>( std::max<long long>( 1, std::atoll( value ) ) );
    }
    return fallback;
}

[[nodiscard]] double
envSeconds( const char* name, double fallback )
{
    if ( const char* value = std::getenv( name ); ( value != nullptr ) && ( value[0] != '\0' ) ) {
        return std::max( 0.1, std::atof( value ) );
    }
    return fallback;
}

/** Zipf(s=1) sampler over n ranks via inverse-CDF table lookup, with ranks
 * scattered over the slots so the hot set is not one contiguous prefix. */
class ZipfSampler
{
public:
    ZipfSampler( std::size_t n, std::uint64_t seed ) :
        m_rng( seed )
    {
        m_cumulative.reserve( n );
        double total = 0;
        for ( std::size_t rank = 1; rank <= n; ++rank ) {
            total += 1.0 / static_cast<double>( rank );
            m_cumulative.push_back( total );
        }
        for ( auto& value : m_cumulative ) {
            value /= total;
        }
    }

    [[nodiscard]] std::size_t
    operator()()
    {
        const auto uniform = static_cast<double>( m_rng() >> 11U ) * 0x1.0p-53;
        const auto rank = static_cast<std::size_t>(
            std::lower_bound( m_cumulative.begin(), m_cumulative.end(), uniform )
            - m_cumulative.begin() );
        /* Scatter rank -> slot with a fixed odd multiplier. */
        return ( rank * 2654435761ULL ) % m_cumulative.size();
    }

    [[nodiscard]] Xorshift64&
    rng() noexcept
    {
        return m_rng;
    }

private:
    Xorshift64 m_rng;
    std::vector<double> m_cumulative;
};

/** Blocking keep-alive HTTP client reduced to what the generator needs. */
class LoadClient
{
public:
    explicit LoadClient( std::uint16_t port )
    {
        m_fd = ::socket( AF_INET, SOCK_STREAM, 0 );
        if ( m_fd < 0 ) {
            return;
        }
        sockaddr_in address{};
        address.sin_family = AF_INET;
        address.sin_port = htons( port );
        ::inet_pton( AF_INET, "127.0.0.1", &address.sin_addr );
        if ( ::connect( m_fd, reinterpret_cast<sockaddr*>( &address ), sizeof( address ) ) != 0 ) {
            ::close( m_fd );
            m_fd = -1;
        }
    }

    ~LoadClient()
    {
        if ( m_fd >= 0 ) {
            ::close( m_fd );
        }
    }

    LoadClient( const LoadClient& ) = delete;
    LoadClient& operator=( const LoadClient& ) = delete;

    [[nodiscard]] bool
    connected() const noexcept
    {
        return m_fd >= 0;
    }

    [[nodiscard]] bool
    send( const std::string& raw ) const
    {
        std::size_t sent = 0;
        while ( sent < raw.size() ) {
            const auto got = ::send( m_fd, raw.data() + sent, raw.size() - sent, MSG_NOSIGNAL );
            if ( got < 0 ) {
                if ( errno == EINTR ) {
                    continue;  /* progress-neutral: retry the same span */
                }
                return false;
            }
            if ( got == 0 ) {
                return false;
            }
            sent += static_cast<std::size_t>( got );
        }
        return true;
    }

    /** Read one response; true + status + body on success. */
    [[nodiscard]] bool
    readResponse( int& status, std::string& body )
    {
        std::size_t headerEnd = std::string::npos;
        while ( ( headerEnd = m_buffer.find( "\r\n\r\n" ) ) == std::string::npos ) {
            if ( !fill() ) {
                return false;
            }
        }
        const auto statusBegin = m_buffer.find( ' ' );
        if ( ( statusBegin == std::string::npos ) || ( statusBegin > headerEnd ) ) {
            return false;
        }
        status = std::atoi( m_buffer.c_str() + statusBegin + 1 );

        std::size_t contentLength = 0;
        const auto lengthPos = m_buffer.find( "Content-Length: " );
        if ( ( lengthPos == std::string::npos ) || ( lengthPos > headerEnd ) ) {
            return false;
        }
        contentLength = static_cast<std::size_t>(
            std::atoll( m_buffer.c_str() + lengthPos + std::strlen( "Content-Length: " ) ) );

        while ( m_buffer.size() < headerEnd + 4 + contentLength ) {
            if ( !fill() ) {
                return false;
            }
        }
        body = m_buffer.substr( headerEnd + 4, contentLength );
        m_buffer.erase( 0, headerEnd + 4 + contentLength );
        return true;
    }

private:
    [[nodiscard]] bool
    fill()
    {
        char chunk[32 * 1024];
        while ( true ) {
            const auto got = ::recv( m_fd, chunk, sizeof( chunk ), 0 );
            if ( got < 0 ) {
                if ( errno == EINTR ) {
                    continue;
                }
                return false;
            }
            if ( got == 0 ) {
                return false;  /* peer closed */
            }
            m_buffer.append( chunk, static_cast<std::size_t>( got ) );
            return true;
        }
    }

    int m_fd{ -1 };
    std::string m_buffer;
};

struct ClientTally
{
    std::vector<double> latenciesMs;
    std::size_t requests{ 0 };
    std::size_t errors{ 0 };
};

void
writeFile( const std::string& path, const std::vector<std::uint8_t>& bytes )
{
    std::FILE* file = std::fopen( path.c_str(), "wb" );
    if ( file == nullptr ) {
        std::fprintf( stderr, "Cannot write %s\n", path.c_str() );
        std::exit( 1 );
    }
    if ( std::fwrite( bytes.data(), 1, bytes.size(), file ) != bytes.size() ) {
        std::exit( 1 );
    }
    std::fclose( file );
}

[[nodiscard]] double
percentile( std::vector<double>& sorted, double fraction )
{
    if ( sorted.empty() ) {
        return 0;
    }
    const auto index = std::min( sorted.size() - 1,
                                 static_cast<std::size_t>( fraction
                                                           * static_cast<double>( sorted.size() ) ) );
    return sorted[index];
}

}  // namespace

int
main( int argc, char** argv )
{
    std::signal( SIGPIPE, SIG_IGN );

    /* --trace out.json: record pipeline/serve spans for the whole run and
     * drain them to Chrome trace-event JSON at exit (same machinery as the
     * RAPIDGZIP_TRACE environment variable). */
    for ( int i = 1; i < argc; ++i ) {
        if ( ( std::strcmp( argv[i], "--trace" ) == 0 ) && ( i + 1 < argc ) ) {
            telemetry::traceToFileAtExit( argv[i + 1] );
            telemetry::setMetricsEnabled( true );
            ++i;
        } else {
            std::fprintf( stderr, "Usage: serve_load [--trace out.json]\n" );
            return 2;
        }
    }

    bench::printHeader( "rapidgzip-serve load: concurrent Zipf range requests" );

    const auto scale = bench::benchScale();
    const auto clientCount =
        envCount( "RAPIDGZIP_SERVE_CLIENTS",
                  std::max<std::size_t>( 4, static_cast<std::size_t>( 256 * scale ) ) );
    const auto archiveCount = envCount( "RAPIDGZIP_SERVE_ARCHIVES", 4 );
    const auto threadCount = envCount( "RAPIDGZIP_SERVE_THREADS", 1 );
    const auto seconds = envSeconds( "RAPIDGZIP_SERVE_SECONDS", std::max( 1.0, 5.0 * scale ) );
    const auto archiveSize = bench::scaledSize( 8 * MiB );
    constexpr std::size_t REQUEST_BYTES = 4 * KiB;
    constexpr std::size_t OFFSET_SLOTS = 512;

    /* Stage the archives. */
    char directoryTemplate[] = "/tmp/rapidgzip-serve-load-XXXXXX";
    const char* directory = ::mkdtemp( directoryTemplate );
    if ( directory == nullptr ) {
        std::fprintf( stderr, "mkdtemp failed\n" );
        return 1;
    }
    std::vector<std::vector<std::uint8_t> > referenceData;
    for ( std::size_t i = 0; i < archiveCount; ++i ) {
        referenceData.push_back( workloads::base64Data( archiveSize, 0x5E57E + i ) );
        /* The last archive is a single no-flush gzip member so its open runs
         * the two-stage pipeline (block-finder guesses, marker decode,
         * window stitch) — a --trace run captures both decode paths. */
        const auto compressed = ( i + 1 == archiveCount )
                                ? compressGzipLike( referenceData.back(), 6 )
                                : compressPigzLike( referenceData.back(), 6, 512 * KiB );
        writeFile( std::string( directory ) + "/archive" + std::to_string( i ) + ".gz",
                   compressed );
    }

    serve::ServerConfiguration configuration;
    configuration.port = 0;
    configuration.rootDirectory = directory;
    configuration.workerCount = 8;
    configuration.shardCount = threadCount;
    configuration.cacheBytes = 512 * MiB;
    configuration.maxArchives = archiveCount;
    configuration.readerConfiguration.parallelism = 2;
    configuration.readerConfiguration.chunkSizeBytes = 1 * MiB;

    serve::Server server( std::move( configuration ) );
    server.start();
    const auto port = server.port();
    std::thread loop( [&server] () { server.run(); } );

    std::printf( "  %zu clients x Zipf offsets over %zu archives (%zu MiB each), %.1f s, "
                 "%zu event-loop shard(s)\n",
                 clientCount, archiveCount, archiveSize / MiB, seconds, server.shardCount() );
    std::fflush( stdout );

    /* Drive the load. */
    const auto deadline = std::chrono::steady_clock::now()
                          + std::chrono::duration<double>( seconds );
    std::vector<ClientTally> tallies( clientCount );
    std::vector<std::thread> clients;
    for ( std::size_t c = 0; c < clientCount; ++c ) {
        clients.emplace_back( [&, c] () {
            auto& tally = tallies[c];
            ZipfSampler archivePicker( archiveCount, 0xC11E47 + c );
            ZipfSampler offsetPicker( OFFSET_SLOTS, 0x0FF5E7 + c );
            LoadClient client( port );
            if ( !client.connected() ) {
                ++tally.errors;
                return;
            }
            while ( std::chrono::steady_clock::now() < deadline ) {
                const auto archive = archivePicker();
                const auto& data = referenceData[archive];
                const auto slot = offsetPicker();
                const auto offset = std::min( data.size() - REQUEST_BYTES,
                                              slot * ( data.size() / OFFSET_SLOTS ) );
                const auto request = "GET /archive" + std::to_string( archive )
                                     + ".gz HTTP/1.1\r\nHost: bench\r\nRange: bytes="
                                     + std::to_string( offset ) + "-"
                                     + std::to_string( offset + REQUEST_BYTES - 1 ) + "\r\n\r\n";
                const auto begin = std::chrono::steady_clock::now();
                int status = 0;
                std::string body;
                if ( !client.send( request )
                     || !client.readResponse( status, body ) ) {
                    ++tally.errors;
                    return;  /* connection torn: this client is done */
                }
                const auto elapsed = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - begin ).count();
                if ( ( status != 206 ) || ( body.size() != REQUEST_BYTES )
                     || ( std::memcmp( body.data(), data.data() + offset, REQUEST_BYTES ) != 0 ) ) {
                    ++tally.errors;
                    return;
                }
                ++tally.requests;
                tally.latenciesMs.push_back( elapsed );
            }
        } );
    }

    const Stopwatch wallClock;
    for ( auto& client : clients ) {
        client.join();
    }
    const auto wallSeconds = wallClock.elapsed();

    server.stop();
    loop.join();

    /* Aggregate. */
    std::size_t requests = 0;
    std::size_t errors = 0;
    std::vector<double> latencies;
    for ( auto& tally : tallies ) {
        requests += tally.requests;
        errors += tally.errors;
        latencies.insert( latencies.end(), tally.latenciesMs.begin(), tally.latenciesMs.end() );
    }
    std::sort( latencies.begin(), latencies.end() );

    const auto requestsPerSecond = static_cast<double>( requests ) / std::max( wallSeconds, 1e-9 );
    const auto p50 = percentile( latencies, 0.50 );
    const auto p99 = percentile( latencies, 0.99 );
    const auto cacheStats = server.sharedCache().statistics();
    const auto& metrics = server.metrics();

    std::printf( "  %-22s %12.0f req/s\n", "throughput", requestsPerSecond );
    std::printf( "  %-22s %12.3f ms\n", "latency p50", p50 );
    std::printf( "  %-22s %12.3f ms\n", "latency p99", p99 );
    std::printf( "  %-22s %12.1f %%\n", "cache hit rate", 100.0 * cacheStats.hitRate() );
    std::printf( "  %-22s %12zu\n", "requests", requests );
    std::printf( "  %-22s %12zu\n", "errors", errors );

    /* Zero-copy proof: every body byte must have been lent out of a cached
     * chunk; a single range-copied byte means the 206 hot path regressed to
     * copying. */
    const auto zeroCopyBytes = static_cast<std::size_t>( metrics.zeroCopyBytes.total() );
    const auto rangeCopyBytes = static_cast<std::size_t>( metrics.rangeCopyBytes.total() );
    std::printf( "  %-22s %12zu\n", "zero-copy bytes", zeroCopyBytes );
    std::printf( "  %-22s %12zu\n", "range-copy bytes", rangeCopyBytes );

    const char* jsonPath = std::getenv( "RAPIDGZIP_BENCH_JSON" );
    std::FILE* json = std::fopen(
        ( jsonPath != nullptr ) && ( jsonPath[0] != '\0' ) ? jsonPath : "BENCH_serve.json", "w" );
    if ( json == nullptr ) {
        std::fprintf( stderr, "Cannot open BENCH_serve.json for writing!\n" );
        return 1;
    }
    std::fprintf(
        json,
        "{\n"
        "  \"benchmark\": \"serve_load\",\n"
        "  \"config\": {\n"
        "    \"clients\": %zu,\n"
        "    \"archives\": %zu,\n"
        "    \"archive_bytes\": %zu,\n"
        "    \"request_bytes\": %zu,\n"
        "    \"duration_seconds\": %.3f,\n"
        "    \"threads\": %zu,\n"
        "    \"scale\": %.3f\n"
        "  },\n"
        "  \"results\": {\n"
        "    \"requests\": %zu,\n"
        "    \"errors\": %zu,\n"
        "    \"requests_per_second\": %.1f,\n"
        "    \"latency_p50_ms\": %.3f,\n"
        "    \"latency_p99_ms\": %.3f,\n"
        "    \"cache_hit_rate\": %.4f,\n"
        "    \"cache_hits\": %zu,\n"
        "    \"cache_misses\": %zu,\n"
        "    \"cache_insertions\": %zu,\n"
        "    \"cache_evictions\": %zu,\n"
        "    \"bytes_served\": %zu,\n"
        "    \"zero_copy_bytes\": %zu,\n"
        "    \"zero_copy_spans\": %zu,\n"
        "    \"range_copy_bytes\": %zu\n"
        "  }\n"
        "}\n",
        clientCount, archiveCount, archiveSize, REQUEST_BYTES, wallSeconds, threadCount, scale,
        requests, errors, requestsPerSecond, p50, p99,
        cacheStats.hitRate(), cacheStats.hits, cacheStats.misses,
        cacheStats.insertions, cacheStats.evictions,
        static_cast<std::size_t>( metrics.bytesServed.total() ),
        zeroCopyBytes,
        static_cast<std::size_t>( metrics.zeroCopySpans.total() ),
        rangeCopyBytes );
    std::fclose( json );

    if ( ( errors > 0 ) || ( requests == 0 ) ) {
        std::fprintf( stderr, "FAILED: %zu errors across %zu requests\n", errors, requests );
        return 1;
    }
    if ( rangeCopyBytes != 0 ) {
        std::fprintf( stderr, "FAILED: %zu body bytes were range-copied — "
                      "the 206 hot path must be zero-copy\n", rangeCopyBytes );
        return 1;
    }
    std::printf( "  OK: all responses 206 and byte-exact, body bytes zero-copy\n" );
    return 0;
}
