/**
 * Figure 12 reproduction: influence of the chunk size on decompression
 * bandwidth at a fixed thread count. Paper (16 cores, 8 GiB base64): very
 * small chunks lose to block finder overhead; very large chunks lose to load
 * imbalance. Optimum at 4 MiB for rapidgzip vs 32 MiB for pugz — the faster
 * block finder allows 8x smaller chunks and hence less memory.
 */

#include <memory>

#include "baselines/PugzLikeDecompressor.hpp"
#include "core/ParallelGzipReader.hpp"
#include "gzip/ZlibCompressor.hpp"
#include "io/MemoryFileReader.hpp"
#include "workloads/DataGenerators.hpp"

#include "BenchmarkHelpers.hpp"

using namespace rapidgzip;

int
main()
{
    bench::printHeader("Figure 12: influence of the chunk size (fixed parallelism = 4)");

    const auto data = workloads::base64Data(bench::scaledSize(48 * MiB), 0xF1C);
    const auto compressed = compressPigzLike({ data.data(), data.size() }, 6, 512 * 1024);
    const auto repeats = bench::benchRepeats(3);
    constexpr std::size_t THREADS = 4;

    std::printf("  compressed size: %s\n\n", formatBytes(compressed.size()).c_str());
    std::printf("  %-14s %-12s %-28s %s\n", "chunk size", "#chunks", "rapidgzip", "pugz-like");

    for (const std::size_t chunkSize : { 64 * KiB, 128 * KiB, 256 * KiB, 512 * KiB,
                                         1 * MiB, 2 * MiB, 4 * MiB, 8 * MiB, 16 * MiB }) {
        const auto rapid = bench::measureBandwidth(data.size(), repeats, [&]() {
            ChunkFetcherConfiguration config;
            config.parallelism = THREADS;
            config.chunkSizeBytes = chunkSize;
            ParallelGzipReader reader(std::make_unique<MemoryFileReader>(compressed), config);
            (void)reader.decompressAll();
        });

        const auto pugz = bench::measureBandwidth(data.size(), repeats, [&]() {
            PugzLikeDecompressor::Options options;
            options.threadCount = THREADS;
            options.chunkSizeBytes = chunkSize;
            PugzLikeDecompressor decompressor(std::make_unique<MemoryFileReader>(compressed),
                                              options);
            (void)decompressor.decompressAllSize();
        });

        std::printf("  %-14s %-12zu %10.2f ± %-8.2f MB/s %10.2f ± %-8.2f MB/s\n",
                    formatBytes(chunkSize).c_str(), compressed.size() / chunkSize + 1,
                    rapid.mean / 1e6, rapid.stddev / 1e6, pugz.mean / 1e6, pugz.stddev / 1e6);
        std::fflush(stdout);
    }

    std::printf("\n  Expected shape (paper Fig. 12): an inverted U; rapidgzip's optimum\n"
                "  sits at a smaller chunk size than pugz's thanks to the faster finder.\n");
    return 0;
}
