/**
 * Figure 10 reproduction: decompression scaling on a Silesia-like corpus
 * (see DESIGN.md for the substitution). Paper: rapidgzip reaches 5.6 GB/s
 * without an index and 16.3 GB/s with one on 128 cores; scaling stops around
 * 64 cores because the corpus' many backward pointers keep markers alive, so
 * the serial window propagation becomes an Amdahl bottleneck. pugz is absent:
 * it cannot decompress this data at all (byte range restriction).
 */

#include <memory>

#include "core/ParallelGzipReader.hpp"
#include "gzip/ZlibCompressor.hpp"
#include "io/MemoryFileReader.hpp"
#include "workloads/DataGenerators.hpp"

#include "ScalingHarness.hpp"

using namespace rapidgzip;

int
main()
{
    const auto data = workloads::silesiaLikeData(bench::scaledSize(48 * MiB), 0xF1A);
    const auto compressed = compressPigzLike({ data.data(), data.size() }, 6, 512 * 1024);

    auto index = std::make_shared<GzipIndex>();
    {
        ParallelGzipReader builder(std::make_unique<MemoryFileReader>(compressed),
                                   bench::scalingConfig(4));
        *index = builder.exportIndex();
    }

    bench::runScaling(
        "Figure 10: parallel decompression of the Silesia-like corpus",
        data, compressed,
        {
            bench::rapidgzipIndexTool(index),
            bench::rapidgzipNoIndexTool(),
            bench::sequentialGzipTool(),
            bench::zlibTool(),
        });

    /* pugz row: reproduce the paper's observation that it errors out. */
    std::printf("\n  pugz-like: ");
    try {
        PugzLikeDecompressor decompressor(std::make_unique<MemoryFileReader>(compressed),
                                          { .threadCount = 4 });
        (void)decompressor.decompressAllSize();
        std::printf("unexpectedly succeeded\n");
    } catch (const RapidgzipError& error) {
        std::printf("fails as in the paper (%s)\n", error.what());
    }

    std::printf("\n  Expected shape (paper Fig. 10): same ordering as Fig. 9 but with a\n"
                "  larger index-vs-no-index gap (markers never die out); single-threaded\n"
                "  decompressors are faster here than on base64 because backward pointers\n"
                "  produce bytes faster than Huffman decoding.\n");
    return 0;
}
