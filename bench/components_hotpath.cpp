/**
 * Hot-path component benchmark: before/after throughput for each
 * optimization of the PR-4 overhaul, emitted as JSON (BENCH_hotpath.json)
 * so the perf trajectory is measured, committed, and CI-reproducible.
 *
 * "Before" is the VERBATIM pre-PR implementation, vendored under
 * bench/legacy/ (namespace rapidgzip_legacy) — byte-wise BitReader refill,
 * per-symbol two-level-LUT decoding with push_back emission, per-symbol
 * precode counting — NOT the current tree in a compatibility mode, so the
 * committed speedups are true pre-PR-vs-post-PR deltas. Both sides'
 * measurement loops are compiled in their own translation units
 * (LegacyBaseline.cpp / CurrentHotpaths.cpp); see HotpathContracts.hpp.
 *
 *  - bitreader_refill:      checked per-call read() on the legacy reader vs
 *                           the amortized ensureBits()/readUnsafe() loop
 *  - marker_decoder:        windowless (16-bit marker) Deflate decode from a
 *                           mid-stream block
 *  - plain_decoder:         the same comparison with a known window
 *  - blockfinder_rejection: the precode rejection stage of the rapid block
 *                           finder (positions surviving the 8-bit prefix
 *                           filters), per-symbol counting vs the packed
 *                           64-bit histogram with the fused Kraft sum
 *  - chunk_pipeline:        end-to-end parallel decompressMember, current
 *                           infrastructure with the symbol loop switched
 *                           between reference and fast (an in-tree ablation,
 *                           the one component not measured against legacy)
 *
 * PR 7 adds the SIMD dispatch layer (src/simd/) and three more components:
 *
 *  - replace_markers:       the two-stage marker substitution, pre-PR scalar
 *                           per-symbol loop vs the dispatched compare-and-
 *                           blend kernel (measured on a ~10%-marker mix and
 *                           on marker-free data, the fast-path sweep)
 *  - crc32:                 zlib's crc32 (the pre-PR CRC on every hot path)
 *                           vs the dispatched slice-by-16 / PCLMULQDQ kernel
 *  - precode_stage5:        the full cascade on positions that SURVIVE
 *                           stages 1-4, where the stage-5 RLE parse
 *                           dominates: pre-PR heap-allocating HuffmanCoding
 *                           vs the cached 128-entry precode LUT
 *
 * Every before/after pair is checked for bit-exact agreement before it is
 * timed — a diverging component aborts the benchmark.
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "blockfinder/DynamicBlockFinderNaive.hpp"
#include "common/Util.hpp"
#include "deflate/definitions.hpp"
#include "failsafe/FaultInjection.hpp"
#include "gzip/GzipHeader.hpp"
#include "gzip/ZlibCompressor.hpp"
#include "simd/Crc32.hpp"
#include "simd/Dispatch.hpp"
#include "telemetry/Registry.hpp"
#include "telemetry/Trace.hpp"
#include "workloads/DataGenerators.hpp"

#include "BenchmarkHelpers.hpp"
#include "CurrentHotpaths.hpp"
#include "LegacyBaseline.hpp"

using namespace rapidgzip;

namespace {

struct Row
{
    std::string component;
    std::string workload;
    std::string unit;
    double before{ 0 };
    double after{ 0 };
};

std::vector<Row> g_rows;

void
addRow( const std::string& component, const std::string& workload, const std::string& unit,
        double before, double after )
{
    g_rows.push_back( { component, workload, unit, before, after } );
    std::printf( "  %-24s %-10s %12.2f -> %12.2f %-8s %6.2fx\n",
                 component.c_str(), workload.c_str(), before, after, unit.c_str(),
                 after / std::max( before, 1e-9 ) );
    std::fflush( stdout );
}

void
writeJson( const char* path, double scale, std::size_t repeats, const char* notes )
{
    std::FILE* file = std::fopen( path, "w" );
    if ( file == nullptr ) {
        std::fprintf( stderr, "Cannot open %s for writing!\n", path );
        std::exit( 1 );
    }
    std::fprintf( file, "{\n  \"benchmark\": \"components_hotpath\",\n"
                        "  \"baseline\": \"bench/legacy (verbatim pre-PR hot paths)\",\n"
                        "  \"simd_dispatch\": \"%s\",\n"
                        "  \"scale\": %g,\n  \"repeats\": %zu,\n  \"components\": [\n",
                  simd::toString( simd::activeLevel() ), scale, repeats );
    for ( std::size_t i = 0; i < g_rows.size(); ++i ) {
        const auto& row = g_rows[i];
        std::fprintf( file,
                      "    { \"component\": \"%s\", \"workload\": \"%s\", \"unit\": \"%s\", "
                      "\"before\": %.2f, \"after\": %.2f, \"speedup\": %.3f }%s\n",
                      row.component.c_str(), row.workload.c_str(), row.unit.c_str(),
                      row.before, row.after, row.after / std::max( row.before, 1e-9 ),
                      i + 1 < g_rows.size() ? "," : "" );
    }
    std::fprintf( file, "  ],\n  \"notes\": \"%s\"\n}\n", notes );
    std::fclose( file );
    std::printf( "\n  JSON written to %s\n", path );
}

[[nodiscard]] BufferView
deflateStream( const std::vector<std::uint8_t>& gz )
{
    const auto start = parseGzipHeader( { gz.data(), gz.size() } );
    return { gz.data() + start, gz.size() - start };
}

void
require( bool condition, const char* what )
{
    if ( !condition ) {
        std::fprintf( stderr, "EQUIVALENCE FAILURE: %s\n", what );
        std::exit( 1 );
    }
}

/** Interleave single-repeat before/after measurements and keep each side's
 * best: ambient load on a shared machine comes in phases, and pairing the
 * runs makes a slow phase hit both sides instead of biasing one. */
template<typename MeasureBefore, typename MeasureAfter>
[[nodiscard]] std::pair<double, double>
interleaved( std::size_t repeats, const MeasureBefore& before, const MeasureAfter& after )
{
    double bestBefore = 0;
    double bestAfter = 0;
    for ( std::size_t i = 0; i < repeats; ++i ) {
        bestBefore = std::max( bestBefore, before() );
        bestAfter = std::max( bestAfter, after() );
    }
    return { bestBefore, bestAfter };
}

void
benchmarkBitReader( std::size_t repeats )
{
    const auto data = workloads::randomData( bench::scaledSize( 32 * MiB ), 0xB17 );
    constexpr unsigned BITS = 12;  /* a typical Huffman-code-sized request */
    const BufferView view{ data.data(), data.size() };
    const auto [before, after] = interleaved(
        repeats,
        [&] () { return legacybench::measureBitReaderBandwidth( view, BITS, 1 ); },
        [&] () { return currentbench::measureBitReaderBandwidth( view, BITS, 1 ); } );
    addRow( "bitreader_refill", "random_bits", "MB/s", before / 1e6, after / 1e6 );
}

void
benchmarkDecoder( const char* workload, const std::vector<std::uint8_t>& raw,
                  std::size_t repeats )
{
    const auto gz = compressGzipLike( { raw.data(), raw.size() }, 6 );
    const auto stream = deflateStream( gz );

    /* Marker mode: start at a found mid-stream block, window unknown. */
    const blockfinder::DynamicBlockFinderNaive finder;
    const auto midBlock = finder.find( stream, stream.size() / 4 * 8 );
    require( midBlock != blockfinder::NOT_FOUND, "no mid-stream block found" );

    for ( const bool windowKnown : { false, true } ) {
        const auto fromBit = windowKnown ? 0 : midBlock;

        /* Equivalence first: the legacy and current decoders must produce
         * identical bytes (and identical markers, via the flattening). */
        const auto legacyOut = legacybench::decodeOnce( stream, fromBit, windowKnown );
        const auto currentOut = currentbench::decodeOnce( stream, fromBit, windowKnown );
        require( legacyOut.ok, "legacy decoder error" );
        require( currentOut.ok, "current decoder error" );
        require( legacyOut.flattened == currentOut.flattened,
                 "current decode diverges from the pre-PR decode" );

        const auto decodedBytes = currentOut.totalSize;
        const auto [before, after] = interleaved(
            repeats,
            [&] () { return legacybench::measureDecodeBandwidth(
                         stream, fromBit, windowKnown, decodedBytes, 1 ); },
            [&] () { return currentbench::measureDecodeBandwidth(
                         stream, fromBit, windowKnown, decodedBytes, 1 ); } );
        require( ( before > 0 ) && ( after > 0 ), "decode changed between runs" );
        addRow( windowKnown ? "plain_decoder" : "marker_decoder", workload, "MB/s",
                before / 1e6, after / 1e6 );
    }
}

void
benchmarkRejection( const char* workload, const std::vector<std::uint8_t>& raw,
                    std::size_t repeats )
{
    const auto gz = compressGzipLike( { raw.data(), raw.size() }, 6 );
    const auto stream = deflateStream( gz );

    /* The precode stage only runs on positions surviving the 8-bit prefix
     * filters (BFINAL = 0, BTYPE = dynamic, HLIT <= 29) — collect those so
     * the measurement isolates the rejection stage this PR optimizes. */
    const auto positions = currentbench::collectPrecodeStagePositions( stream );
    require( !positions.empty(), "no precode-stage candidate positions" );

    /* Equivalence first: packed vs pre-PR on acceptance and every precode
     * counter, and packed vs the in-tree scalar variant per position. */
    require( currentbench::runFilter( stream, positions )
             == legacybench::runFilter( stream, positions ),
             "packed precode filter diverges from the pre-PR filter" );
    require( currentbench::scalarMatchesPacked( stream, positions ),
             "packed precode filter diverges from the scalar variant" );

    const auto [before, after] = interleaved(
        repeats,
        [&] () { return legacybench::measureRejectionRate( stream, positions, 1 ); },
        [&] () { return currentbench::measureRejectionRate( stream, positions, 1 ); } );
    addRow( "blockfinder_rejection", workload, "Mpos/s", before / 1e6, after / 1e6 );
}

void
benchmarkReplaceMarkers( std::size_t repeats )
{
    /* A full 32 KiB last-window plus two symbol mixes: ~10% markers (a
     * mid-chunk block that keeps referencing the unknown window) and
     * marker-free (the dominant case once back-references die out, where the
     * vector kernel degenerates to a narrowing sweep with zero per-symbol
     * branches). */
    auto window = workloads::randomData( deflate::WINDOW_SIZE, 0x37A7 );
    const auto symbolCount = bench::scaledSize( 16 * MiB );

    Xorshift64 random( 0x5CA1E );
    for ( const auto markerPermille : { std::size_t( 100 ), std::size_t( 0 ) } ) {
        std::vector<std::uint16_t> symbols( symbolCount );
        for ( auto& symbol : symbols ) {
            const auto raw16 = static_cast<std::uint16_t>( random() );
            symbol = ( random() % 1000 ) < markerPermille
                     ? static_cast<std::uint16_t>( raw16 | 0x8000U )
                     : static_cast<std::uint16_t>( raw16 & 0x7FFFU );
        }

        require( legacybench::replaceMarkersOnce( symbols, window )
                 == currentbench::replaceMarkersOnce( symbols, window ),
                 "simd replaceMarkers diverges from the pre-PR scalar loop" );

        const auto [before, after] = interleaved(
            repeats,
            [&] () { return legacybench::measureReplaceMarkersBandwidth( symbols, window, 1 ); },
            [&] () { return currentbench::measureReplaceMarkersBandwidth( symbols, window, 1 ); } );
        addRow( "replace_markers", markerPermille > 0 ? "markers_10pct" : "marker_free",
                "MB/s", before / 1e6, after / 1e6 );
    }
}

void
benchmarkCrc32( std::size_t repeats )
{
    /* L2-resident working set: the row compares the KERNELS (zlib's
     * slice-by-4 vs the dispatched PCLMUL fold), so the buffer must not be
     * large enough for DRAM bandwidth to cap the fast side — at multi-GB/s
     * a 64 MiB sweep measures the memory subsystem of a loaded shared
     * machine, not the CRC code. In the pipeline the verifier runs on
     * chunk-sized pieces that are cache-warm from the decoder anyway, so
     * the resident case is also the representative one. Several passes per
     * sample keep each timing window well above clock granularity. */
    const auto data = workloads::randomData( bench::scaledSize( 2 * MiB ), 0xC12C );
    const BufferView view{ data.data(), data.size() };

    require( legacybench::crc32Once( view ) == currentbench::crc32Once( view ),
             "simd crc32 diverges from zlib" );

    const auto [before, after] = interleaved(
        repeats,
        [&] () { return legacybench::measureCrc32Bandwidth( view, 8 ); },
        [&] () { return currentbench::measureCrc32Bandwidth( view, 8 ); } );
    addRow( "crc32", "random", "MB/s", before / 1e6, after / 1e6 );
}

void
benchmarkPrecodeStage5( const char* workload, const std::vector<std::uint8_t>& raw,
                        std::size_t repeats )
{
    const auto gz = compressGzipLike( { raw.data(), raw.size() }, 6 );
    const auto stream = deflateStream( gz );

    /* Positions surviving stages 1-4: on these the stage-5 RLE parse IS the
     * cost, so the full cascade isolates the cached-LUT change. Survivors
     * are rare by design (~0.2% of precode-stage candidates), so tile the
     * set up to a stable measurement size — identical work for both sides,
     * and repeated header configurations are exactly what the LUT cache
     * exploits on real streams. */
    auto positions = currentbench::collectStage5Positions( stream );
    require( !positions.empty(), "no stage-5 survivor positions" );
    const auto uniquePositions = positions.size();
    while ( positions.size() < 4096 ) {
        positions.insert( positions.end(), positions.begin(),
                          positions.begin() + uniquePositions );
    }

    require( currentbench::runFilter( stream, positions )
             == legacybench::runFilter( stream, positions ),
             "cached-LUT stage 5 diverges from the pre-PR cascade" );

    const auto [before, after] = interleaved(
        repeats,
        [&] () { return legacybench::measureRejectionRate( stream, positions, 1 ); },
        [&] () { return currentbench::measureRejectionRate( stream, positions, 1 ); } );
    addRow( "precode_stage5", workload, "Mpos/s", before / 1e6, after / 1e6 );
}

/* --- telemetry overhead guard (PR 8) ------------------------------------ */

/* The two sweeps must live in this TU, [[gnu::noinline]], so the compiler
 * cannot specialize the hooked loop on the (known-at-link-time) disabled
 * gate: the point is to price exactly what shipping code pays — one relaxed
 * load per hook — around a realistic unit of work (a 4 KiB CRC update, the
 * granularity at which the pipeline hooks fire). */

[[gnu::noinline]] std::uint32_t
telemetrySweepWithHook( const std::uint8_t* data, std::size_t size, std::size_t iterations )
{
    std::uint32_t crc = 0;
    for ( std::size_t i = 0; i < iterations; ++i ) {
        telemetry::Span span{ "bench", "bench.hooked" };
        RAPIDGZIP_TELEMETRY_COUNT( "rapidgzip_bench_hook_total",
                                   "Overhead-guard hook counter.", 1 );
        crc = simd::crc32( crc, data, size );
    }
    return crc;
}

[[gnu::noinline]] std::uint32_t
telemetrySweepWithoutHook( const std::uint8_t* data, std::size_t size, std::size_t iterations )
{
    std::uint32_t crc = 0;
    for ( std::size_t i = 0; i < iterations; ++i ) {
        crc = simd::crc32( crc, data, size );
    }
    return crc;
}

/* The overhead guards compare two numbers expected to be EQUAL, unlike the
 * figure benches which measure a speedup: a single tiny smoke-scale sample
 * turns scheduler noise straight into phantom "overhead". Floor the work
 * and the repeat count independently of RAPIDGZIP_BENCH_SCALE — a guard
 * sweep is a few milliseconds, so even the floored repeats stay cheap. */
constexpr std::size_t GUARD_MIN_ITERATIONS = 16 * 1024;  /* x 4 KiB = 64 MiB per sweep */
constexpr std::size_t GUARD_MIN_REPEATS = 7;

/* Sanitizers instrument the gate's relaxed load itself, so under ASan/TSan
 * the guards measure instrumentation, not the production invariant: report
 * the number but do not enforce the budget there. */
#if defined( __SANITIZE_ADDRESS__ ) || defined( __SANITIZE_THREAD__ )
constexpr bool GUARD_ENFORCED = false;
#elif defined( __has_feature )
    #if __has_feature( address_sanitizer ) || __has_feature( thread_sanitizer )
constexpr bool GUARD_ENFORCED = false;
    #else
constexpr bool GUARD_ENFORCED = true;
    #endif
#else
constexpr bool GUARD_ENFORCED = true;
#endif

/* interleaved() always samples before-then-after, which is fine for the
 * figure benches but biases an EQUALITY guard: on a machine whose clock is
 * decaying (turbo falling off right after the rest of the suite), the
 * second position in every pair is systematically slower, and max-of-N
 * then charges that bias to one side as phantom overhead. Alternate the
 * order within pairs so clock drift hits both sides equally. */
template<typename MeasureA, typename MeasureB>
[[nodiscard]] std::pair<double, double>
interleavedBalanced( std::size_t repeats, const MeasureA& a, const MeasureB& b )
{
    double bestA = 0;
    double bestB = 0;
    for ( std::size_t i = 0; i < repeats; ++i ) {
        if ( i % 2 == 0 ) {
            bestA = std::max( bestA, a() );
            bestB = std::max( bestB, b() );
        } else {
            bestB = std::max( bestB, b() );
            bestA = std::max( bestA, a() );
        }
    }
    return { bestA, bestB };
}

/** Shared body of the two gate-overhead guards: best-of order-balanced
 * plain-vs-gated bandwidth, re-measured on a breach. A genuinely regressed
 * gate (work before the relaxed load) is over budget on EVERY attempt; a
 * scheduler hiccup on a busy host is not, so only a breach on all attempts
 * fails. The first attempt's numbers go into the committed JSON row. */
template<typename PlainSweep, typename GatedSweep>
void
runOverheadGuard( const char* rowName, const char* gateLabel, const char* failureTag,
                  const char* thresholdEnv, std::uint64_t dataSeed, std::size_t repeats,
                  const PlainSweep& plainSweep, const GatedSweep& gatedSweep )
{
    const auto data = workloads::randomData( 4 * KiB, dataSeed );
    const auto iterations = std::max( bench::scaledSize( 64 * 1024 ), GUARD_MIN_ITERATIONS );
    volatile std::uint32_t sink = 0;

    const auto measure = [&] ( auto&& sweep ) {
        Stopwatch stopwatch;
        sink = sink + sweep( data.data(), data.size(), iterations );
        const auto seconds = stopwatch.elapsed();
        return static_cast<double>( iterations * data.size() ) / std::max( seconds, 1e-12 );
    };

    /* Warm up both code paths (page-in, branch history, frequency) before
     * any sample counts. */
    sink = sink + plainSweep( data.data(), data.size(), iterations );
    sink = sink + gatedSweep( data.data(), data.size(), iterations );

    double threshold = 2.0;
    if ( const char* env = std::getenv( thresholdEnv );
         ( env != nullptr ) && ( env[0] != '\0' ) )
    {
        threshold = std::atof( env );
    }

    constexpr int ATTEMPTS = 5;
    double overheadPercent = 0;
    for ( int attempt = 0; attempt < ATTEMPTS; ++attempt ) {
        if ( attempt > 0 ) {
            /* Let a transient host-load spike pass before re-measuring;
             * escalate so a multi-second grind still gets a clean window. */
            std::this_thread::sleep_for( std::chrono::milliseconds( 100 * attempt ) );
        }
        const auto [plain, gated] = interleavedBalanced(
            std::max( repeats, GUARD_MIN_REPEATS ),
            [&] () { return measure( plainSweep ); },
            [&] () { return measure( gatedSweep ); } );
        if ( attempt == 0 ) {
            /* Row semantics match the others: before = plain, after = with
             * the disabled gate; "speedup" ~1.0 is the pass condition,
             * printed so the committed JSON carries the overhead number,
             * not just pass/fail. */
            addRow( rowName, "crc32_4KiB", "MB/s", plain / 1e6, gated / 1e6 );
        }
        overheadPercent = ( plain / std::max( gated, 1.0 ) - 1.0 ) * 100.0;
        if ( !GUARD_ENFORCED || ( overheadPercent <= threshold ) ) {
            break;
        }
        std::printf( "  %s overhead %.2f%% > %.1f%% on attempt %d/%d, re-measuring\n",
                     gateLabel, overheadPercent, threshold, attempt + 1, ATTEMPTS );
    }

    std::printf( "  %s overhead: %.2f%% (budget %.1f%%%s)\n",
                 gateLabel, std::max( overheadPercent, 0.0 ), threshold,
                 GUARD_ENFORCED ? "" : ", not enforced under sanitizers" );
    if ( GUARD_ENFORCED && ( overheadPercent > threshold ) ) {
        std::fprintf( stderr,
                      "%s OVERHEAD FAILURE: disabled gates cost %.2f%% > %.1f%% on every "
                      "attempt of the crc32 sweep — a %s is doing work before checking "
                      "the gate\n",
                      failureTag, overheadPercent, threshold, gateLabel );
        std::exit( 1 );
    }
}

void
benchmarkTelemetryOverhead( std::size_t repeats )
{
    /* Measure the DISABLED state — that is the invariant this guard protects
     * (library users who never opt in must not pay for the hooks) — but
     * restore whatever the process had, so RAPIDGZIP_TRACE runs still trace. */
    const auto savedBits = telemetry::g_activeBits.exchange( 0, std::memory_order_relaxed );

    runOverheadGuard( "telemetry_overhead", "telemetry-disabled hook", "TELEMETRY",
                      "RAPIDGZIP_TELEMETRY_OVERHEAD_PCT", 0x7E1E, repeats,
                      telemetrySweepWithoutHook, telemetrySweepWithHook );

    telemetry::g_activeBits.store( savedBits, std::memory_order_relaxed );
}

/* --- failsafe overhead guard (PR 9) ------------------------------------- */

/* Same contract as the telemetry guard: a DISABLED fault probe must cost one
 * relaxed load and nothing else. The sweep interleaves a shouldInject()
 * probe with the same 4 KiB CRC unit of work; [[gnu::noinline]] keeps the
 * compiler from specializing on the statically-disarmed mask. */

[[gnu::noinline]] std::uint32_t
failsafeSweepWithProbe( const std::uint8_t* data, std::size_t size, std::size_t iterations )
{
    std::uint32_t crc = 0;
    for ( std::size_t i = 0; i < iterations; ++i ) {
        if ( failsafe::shouldInject( failsafe::FaultPoint::CHUNK_DECODE ) ) {
            ++crc;  /* unreachable while disarmed; defeats dead-probe elision */
        }
        crc = simd::crc32( crc, data, size );
    }
    return crc;
}

[[gnu::noinline]] std::uint32_t
failsafeSweepWithoutProbe( const std::uint8_t* data, std::size_t size, std::size_t iterations )
{
    std::uint32_t crc = 0;
    for ( std::size_t i = 0; i < iterations; ++i ) {
        crc = simd::crc32( crc, data, size );
    }
    return crc;
}

void
benchmarkFailsafeOverhead( std::size_t repeats )
{
    failsafe::disarmAll();  /* price the production state: no faults armed */

    runOverheadGuard( "failsafe_overhead", "failsafe-disarmed probe", "FAILSAFE",
                      "RAPIDGZIP_FAILSAFE_OVERHEAD_PCT", 0xFA17, repeats,
                      failsafeSweepWithoutProbe, failsafeSweepWithProbe );
}

void
benchmarkPipeline( const char* workload, const std::vector<std::uint8_t>& raw,
                   std::size_t repeats )
{
    const auto gz = compressGzipLike( { raw.data(), raw.size() }, 6 );
    const auto parallelism = std::min<std::size_t>( 4, bench::threadSweep().back() );
    const auto [before, after] = interleaved(
        repeats,
        [&] () { return currentbench::measurePipelineBandwidth(
                     gz, raw.size(), /* referenceSymbolLoop */ true, parallelism, 1 ); },
        [&] () { return currentbench::measurePipelineBandwidth(
                     gz, raw.size(), /* referenceSymbolLoop */ false, parallelism, 1 ); } );
    require( ( before > 0 ) && ( after > 0 ), "pipeline size mismatch" );
    addRow( "chunk_pipeline", workload, "MB/s", before / 1e6, after / 1e6 );
}

}  // namespace

int
main()
{
    bench::printHeader( "Hot-path components: pre-PR baseline vs current (PR 4 + PR 7)" );
    std::printf( "  simd dispatch: %s (detected %s)\n\n",
                 simd::toString( simd::activeLevel() ),
                 simd::toString( simd::detectedLevel() ) );

    const auto repeats = bench::benchRepeats( 3 );
    const auto scale = bench::benchScale();
    std::printf( "  %-24s %-13s %12s    %12s %-8s %7s\n",
                 "component", "workload", "before", "after", "unit", "speedup" );

    benchmarkBitReader( repeats );

    const auto base64 = workloads::base64Data( bench::scaledSize( 16 * MiB ), 0x407B );
    const auto silesia = workloads::silesiaLikeData( bench::scaledSize( 16 * MiB ), 0x407C );

    benchmarkDecoder( "base64", base64, repeats );
    benchmarkDecoder( "silesia", silesia, repeats );
    benchmarkRejection( "base64", base64, repeats );
    benchmarkRejection( "silesia", silesia, repeats );
    benchmarkReplaceMarkers( repeats );
    benchmarkCrc32( repeats );
    benchmarkPrecodeStage5( "base64", base64, repeats );
    benchmarkPrecodeStage5( "silesia", silesia, repeats );
    benchmarkPipeline( "base64", base64, repeats );
    benchmarkPipeline( "silesia", silesia, repeats );
    benchmarkTelemetryOverhead( repeats );
    benchmarkFailsafeOverhead( repeats );

    const char* jsonPath = std::getenv( "RAPIDGZIP_BENCH_JSON" );
    writeJson( ( jsonPath != nullptr ) && ( jsonPath[0] != '\0' ) ? jsonPath
                                                                  : "BENCH_hotpath.json",
               scale, repeats,
               "PR 7 profiling: with markers, CRC32, and the stage-5 precode parse "
               "vectorized or cached, the remaining bottleneck of the chunk pipeline is "
               "the serial Huffman symbol-decode loop itself (bit-serial code resolution "
               "in deflate::Decoder) - the multi-symbol LUT shrank it but it still "
               "dominates per-chunk time ahead of stitching and verification." );

    std::printf( "\n  Expected shape: >= 1.5x on marker_decoder and >= 2x on\n"
                 "  blockfinder_rejection vs the pre-PR baseline (the PR-4 acceptance\n"
                 "  gates); >= 1.5x on replace_markers and >= 3x on crc32 (the PR-7\n"
                 "  gates, on an AVX2 machine); the refill amortization and pipeline\n"
                 "  rows track the same wins upstream and downstream of the symbol loop.\n" );
    return 0;
}
