/**
 * rapidgzip-cat — decompress an archive to stdout.
 *
 *     rapidgzip-cat corpus.gz > corpus
 *     rapidgzip-cat --salvage damaged.gz > partial 2> holes.txt
 *
 * The normal mode routes through the format-dispatch layer (gzip, zstd,
 * lz4, bzip2 by magic bytes) and the parallel chunk pipeline, failing hard
 * on the first damaged byte like any correct decoder. --salvage switches
 * to the recovery decoder (src/formats/Salvage.hpp): every verifiable
 * unit — gzip member, zstd frame, lz4 frame, bzip2 block — is decoded and
 * emitted, and the byte ranges that could not be attributed to a verified
 * unit are reported on stderr as holes. Salvage exits 0 when the archive
 * was clean, 2 when it recovered around holes, 1 on hard errors (nothing
 * recognizable, I/O failure, unsupported backend).
 */

#include <cstdio>
#include <cstring>
#include <exception>
#include <memory>
#include <string>

#include <common/Error.hpp>
#include <failsafe/FaultInjection.hpp>
#include <formats/Formats.hpp>
#include <formats/Salvage.hpp>
#include <io/StandardFileReader.hpp>
#include <simd/Dispatch.hpp>

namespace {

void
printUsage( const char* program )
{
    std::fprintf(
        stderr,
        "Usage: %s [--salvage] <archive>\n"
        "\n"
        "Decompress <archive> (gzip/zstd/lz4/bzip2 by magic bytes) to stdout.\n"
        "\n"
        "  --salvage   best-effort recovery: decode every verifiable unit, skip\n"
        "              damaged ranges, and report them as byte-ranged holes on\n"
        "              stderr instead of aborting. Exit 0 = clean, 2 = holes.\n",
        program );
}

bool
writeAll( const std::uint8_t* data, std::size_t size )
{
    while ( size > 0 ) {
        const auto written = std::fwrite( data, 1, size, stdout );
        if ( written == 0 ) {
            return false;
        }
        data += written;
        size -= written;
    }
    return true;
}

int
runSalvage( const std::string& path )
{
    const rapidgzip::StandardFileReader file( path );
    const auto report = rapidgzip::formats::salvageDecompress(
        file,
        [] ( rapidgzip::BufferView unit ) {
            if ( !writeAll( unit.data(), unit.size() ) ) {
                throw rapidgzip::FileIoError( "write to stdout failed" );
            }
        } );

    std::fprintf( stderr, "salvage: format=%s units=%zu bytes=%zu holes=%zu missing=%zu\n",
                  rapidgzip::formats::toString( report.format ),
                  report.recoveredUnits, report.recoveredBytes,
                  report.holes.size(), report.missingCompressedBytes() );
    for ( const auto& hole : report.holes ) {
        std::fprintf( stderr, "salvage: hole bytes %zu-%zu (%zu bytes)\n",
                      hole.compressedBegin, hole.compressedEnd, hole.size() );
    }
    return report.clean() ? 0 : 2;
}

int
runNormal( const std::string& path )
{
    auto decompressor = rapidgzip::formats::makeDecompressor(
        std::make_unique<rapidgzip::StandardFileReader>( path ) );
    decompressor->decompress( [] ( rapidgzip::BufferView chunk ) {
        if ( !writeAll( chunk.data(), chunk.size() ) ) {
            throw rapidgzip::FileIoError( "write to stdout failed" );
        }
    } );
    return 0;
}

}  // namespace

int
main( int argc, char** argv )
{
    bool salvage = false;
    std::string path;
    for ( int i = 1; i < argc; ++i ) {
        const std::string argument = argv[i];
        if ( ( argument == "-h" ) || ( argument == "--help" ) ) {
            printUsage( argv[0] );
            return 0;
        }
        if ( argument == "--salvage" ) {
            salvage = true;
        } else if ( !argument.empty() && ( argument[0] == '-' ) ) {
            std::fprintf( stderr, "Unknown option: %s\n", argument.c_str() );
            printUsage( argv[0] );
            return 1;
        } else if ( path.empty() ) {
            path = argument;
        } else {
            std::fprintf( stderr, "Only one archive may be given.\n" );
            printUsage( argv[0] );
            return 1;
        }
    }
    if ( path.empty() ) {
        printUsage( argv[0] );
        return 1;
    }

    if ( !rapidgzip::failsafe::configureFromEnvironment() ) {
        std::fprintf( stderr, "Malformed RAPIDGZIP_FAULTS specification.\n" );
        return 1;
    }

    try {
        return salvage ? runSalvage( path ) : runNormal( path );
    } catch ( const std::exception& exception ) {
        std::fprintf( stderr, "%s: %s\n", path.c_str(), exception.what() );
        return 1;
    }
}
