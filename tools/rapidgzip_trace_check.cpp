/**
 * rapidgzip-trace-check — validate a Chrome trace-event JSON artifact.
 *
 *     rapidgzip-trace-check trace.json [required-span-name ...]
 *
 * Parses the file with the strict JSON parser (an implementation independent
 * of the emitter, so this is a real round-trip check), validates the
 * trace-event schema of every event, and — when span names are given —
 * requires at least one complete event with each name. Exit 0 on success,
 * 1 with a diagnostic otherwise. CI runs this on the serve-smoke --trace
 * artifact so a silently-empty or malformed trace fails the build.
 */

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include <telemetry/TraceCheck.hpp>

int
main( int argc, char** argv )
{
    if ( argc < 2 ) {
        std::fprintf( stderr, "Usage: %s <trace.json> [required-span-name ...]\n", argv[0] );
        return 2;
    }

    std::ifstream file( argv[1], std::ios::binary );
    if ( !file ) {
        std::fprintf( stderr, "rapidgzip-trace-check: cannot open %s\n", argv[1] );
        return 1;
    }
    std::ostringstream buffer;
    buffer << file.rdbuf();
    const auto text = buffer.str();

    try {
        rapidgzip::telemetry::JsonParser parser( text );
        const auto document = parser.parse();
        const auto eventCount = rapidgzip::telemetry::validateTraceDocument( document );
        if ( eventCount == 0 ) {
            std::fprintf( stderr, "rapidgzip-trace-check: %s contains no trace events\n", argv[1] );
            return 1;
        }
        std::printf( "%s: %zu valid trace events\n", argv[1], eventCount );

        bool missing = false;
        for ( int i = 2; i < argc; ++i ) {
            const auto count = rapidgzip::telemetry::countTraceEvents( document, argv[i] );
            std::printf( "  %-24s %zu\n", argv[i], count );
            if ( count == 0 ) {
                std::fprintf( stderr, "rapidgzip-trace-check: required span '%s' absent\n",
                              argv[i] );
                missing = true;
            }
        }
        if ( missing ) {
            return 1;
        }
    } catch ( const std::exception& exception ) {
        std::fprintf( stderr, "rapidgzip-trace-check: %s: %s\n", argv[1], exception.what() );
        return 1;
    }
    return 0;
}
