/**
 * rapidgzip-serve — multi-client random-access decompression daemon.
 *
 * Serves decompressed byte ranges of the archives under a root directory
 * over HTTP/1.1:
 *
 *     rapidgzip-serve --port 8080 /data
 *     curl -r 1000000-1000063 http://127.0.0.1:8080/corpus.gz
 *
 * Every archive is opened lazily on first request (gzip/zstd/lz4/bzip2 by
 * magic bytes), adopts a fresh `<archive>.rgzidx` sidecar index when one
 * exists, and shares one process-wide byte-bounded chunk cache across all
 * clients and archives. GET (optionally ranged), HEAD, and /metrics.
 */

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include <failsafe/FaultInjection.hpp>
#include <serve/Server.hpp>
#include <simd/Dispatch.hpp>
#include <telemetry/Trace.hpp>

namespace {

rapidgzip::serve::Server* g_server = nullptr;

void
handleSignal( int /* signal */ )
{
    if ( g_server != nullptr ) {
        g_server->stop();  /* atomic store + self-pipe write: signal-safe */
    }
}

/** SIGTERM drains: stop accepting, finish in-flight requests, then exit.
 * A second SIGTERM (or any SIGINT) stops immediately. All signal-safe. */
void
handleDrainSignal( int /* signal */ )
{
    if ( g_server == nullptr ) {
        return;
    }
    if ( g_server->draining() ) {
        g_server->stop();
    } else {
        g_server->beginDrain();
    }
}

/** "64M", "1G", "4096" → bytes; returns false on garbage. */
bool
parseByteSize( const char* text, std::size_t& result )
{
    char* end = nullptr;
    const auto value = std::strtoull( text, &end, 10 );
    if ( end == text ) {
        return false;
    }
    std::size_t scale = 1;
    switch ( *end ) {
    case '\0': break;
    case 'k': case 'K': scale = std::size_t( 1 ) << 10U; ++end; break;
    case 'm': case 'M': scale = std::size_t( 1 ) << 20U; ++end; break;
    case 'g': case 'G': scale = std::size_t( 1 ) << 30U; ++end; break;
    default: return false;
    }
    if ( *end != '\0' ) {
        return false;
    }
    result = static_cast<std::size_t>( value ) * scale;
    return true;
}

void
printUsage( const char* program )
{
    std::fprintf(
        stderr,
        "Usage: %s [options] <root-directory>\n"
        "\n"
        "Serve decompressed byte ranges of the archives under <root-directory>\n"
        "(gzip, zstd, lz4, bzip2 — detected by magic bytes) over HTTP/1.1.\n"
        "\n"
        "Options:\n"
        "  --port N          listen port (default 8080; 0 = ephemeral)\n"
        "  --bind ADDR       bind address (default 127.0.0.1)\n"
        "  --cache-bytes N   shared chunk-cache budget, K/M/G suffixes ok (default 256M)\n"
        "  --max-archives N  open-archive LRU bound (default 64)\n"
        "  --threads N       event-loop shards, each its own poll() loop and\n"
        "                    SO_REUSEPORT listener (default 0 = one per core)\n"
        "  --workers N       request worker threads (default 4)\n"
        "  --parallelism N   decode threads per archive reader (default 2)\n"
        "  --trace FILE      record spans, write Chrome trace-event JSON on shutdown\n"
        "  --max-connections N        connection admission limit, 0 = off (default 1024)\n"
        "  --max-consumers-per-archive N  concurrent requests per archive, 0 = off (default 0)\n"
        "  --header-timeout-ms N      slow-loris header deadline, 0 = off (default 10000)\n"
        "  --idle-timeout-ms N        keep-alive idle deadline, 0 = off (default 60000)\n"
        "  --write-timeout-ms N       stalled-write deadline, 0 = off (default 30000)\n"
        "  --drain-timeout-ms N       graceful-drain deadline on SIGTERM (default 10000)\n"
        "  --open-backoff-ms N        failed-open negative-cache base backoff, 0 = off (default 1000)\n"
        "  --help            this text\n"
        "\n"
        "Endpoints: GET /<archive> (Range honored), HEAD /<archive>, GET /metrics,\n"
        "           GET /healthz, GET /readyz (503 while draining)\n"
        "Signals:   SIGTERM drains gracefully (finish in-flight, then exit);\n"
        "           a second SIGTERM or SIGINT stops immediately.\n"
        "Faults:    RAPIDGZIP_FAULTS=<point>:<rate>[:<seed>[:<latency-us>]][,...]\n"
        "           arms fault injection (points: io.read chunk.decode pool.task\n"
        "           serve.write alloc) for resilience testing.\n",
        program );
}

}  // namespace

int
main( int argc, char** argv )
{
    rapidgzip::serve::ServerConfiguration configuration;
    configuration.port = 8080;
    configuration.shardCount = 0;  /* daemon default: one event-loop shard per core */
    configuration.readerConfiguration.parallelism = 2;
    std::string rootDirectory;
    std::string tracePath;

    for ( int i = 1; i < argc; ++i ) {
        const std::string argument = argv[i];
        const auto nextValue = [&] () -> const char* {
            if ( i + 1 >= argc ) {
                std::fprintf( stderr, "Missing value for %s\n", argument.c_str() );
                std::exit( 2 );
            }
            return argv[++i];
        };
        if ( argument == "--help" ) {
            printUsage( argv[0] );
            return 0;
        }
        if ( argument == "--port" ) {
            configuration.port = static_cast<std::uint16_t>( std::atoi( nextValue() ) );
        } else if ( argument == "--bind" ) {
            configuration.bindAddress = nextValue();
        } else if ( argument == "--cache-bytes" ) {
            if ( !parseByteSize( nextValue(), configuration.cacheBytes ) ) {
                std::fprintf( stderr, "Invalid --cache-bytes value\n" );
                return 2;
            }
        } else if ( argument == "--max-archives" ) {
            configuration.maxArchives = static_cast<std::size_t>( std::atoll( nextValue() ) );
        } else if ( argument == "--threads" ) {
            configuration.shardCount = static_cast<std::size_t>( std::atoll( nextValue() ) );
        } else if ( argument == "--workers" ) {
            configuration.workerCount = static_cast<std::size_t>( std::atoll( nextValue() ) );
        } else if ( argument == "--parallelism" ) {
            configuration.readerConfiguration.parallelism =
                static_cast<std::size_t>( std::atoll( nextValue() ) );
        } else if ( argument == "--trace" ) {
            tracePath = nextValue();
        } else if ( argument == "--max-connections" ) {
            configuration.maxConnections = static_cast<std::size_t>( std::atoll( nextValue() ) );
        } else if ( argument == "--max-consumers-per-archive" ) {
            configuration.maxConsumersPerArchive =
                static_cast<std::size_t>( std::atoll( nextValue() ) );
        } else if ( argument == "--header-timeout-ms" ) {
            configuration.headerReadTimeoutMs = static_cast<std::uint32_t>( std::atoll( nextValue() ) );
        } else if ( argument == "--idle-timeout-ms" ) {
            configuration.idleTimeoutMs = static_cast<std::uint32_t>( std::atoll( nextValue() ) );
        } else if ( argument == "--write-timeout-ms" ) {
            configuration.writeTimeoutMs = static_cast<std::uint32_t>( std::atoll( nextValue() ) );
        } else if ( argument == "--drain-timeout-ms" ) {
            configuration.drainTimeoutMs = static_cast<std::uint32_t>( std::atoll( nextValue() ) );
        } else if ( argument == "--open-backoff-ms" ) {
            configuration.failedOpenBackoffMs =
                static_cast<std::uint32_t>( std::atoll( nextValue() ) );
        } else if ( !argument.empty() && ( argument.front() == '-' ) ) {
            std::fprintf( stderr, "Unknown option: %s\n", argument.c_str() );
            printUsage( argv[0] );
            return 2;
        } else if ( rootDirectory.empty() ) {
            rootDirectory = argument;
        } else {
            std::fprintf( stderr, "Multiple root directories given\n" );
            return 2;
        }
    }

    if ( rootDirectory.empty() ) {
        printUsage( argv[0] );
        return 2;
    }
    /* Normalize away a trailing slash; the registry joins "<root><url>". */
    while ( ( rootDirectory.size() > 1 ) && ( rootDirectory.back() == '/' ) ) {
        rootDirectory.pop_back();
    }
    configuration.rootDirectory = rootDirectory;

    if ( !rapidgzip::failsafe::configureFromEnvironment() ) {
        std::fprintf( stderr, "rapidgzip-serve: malformed RAPIDGZIP_FAULTS specification\n" );
        return 2;
    }

    if ( !tracePath.empty() ) {
        /* Enable now so archive opens are captured; drain on clean shutdown
         * AND via atexit so a SIGTERM'd daemon still leaves a trace file. */
        rapidgzip::telemetry::traceToFileAtExit( tracePath );
    }

    try {
        const auto bindAddress = configuration.bindAddress;
        rapidgzip::serve::Server server( std::move( configuration ) );
        server.start();
        g_server = &server;
        std::signal( SIGINT, handleSignal );
        std::signal( SIGTERM, handleDrainSignal );
        std::signal( SIGPIPE, SIG_IGN );

        std::printf( "rapidgzip-serve listening on %s:%u, serving %s\n",
                     bindAddress.c_str(), server.port(), rootDirectory.c_str() );
        std::printf( "rapidgzip-serve event-loop shards: %zu (%s)\n",
                     server.shardCount(),
                     server.usesFdHandoff() ? "fd handoff via shard 0"
                                            : "SO_REUSEPORT listeners" );
        std::printf( "rapidgzip-serve simd dispatch: %s (detected: %s)\n",
                     rapidgzip::simd::toString( rapidgzip::simd::activeLevel() ),
                     rapidgzip::simd::toString( rapidgzip::simd::detectedLevel() ) );
        std::fflush( stdout );
        server.run();
        g_server = nullptr;
    } catch ( const std::exception& exception ) {
        std::fprintf( stderr, "rapidgzip-serve: %s\n", exception.what() );
        return 1;
    }
    return 0;
}
